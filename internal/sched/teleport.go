package sched

import (
	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
)

// Teleportation support: instead of executing every inter-QPU gate with
// the cat-entangler protocol (one EPR pair per gate, qubits stay put),
// a qubit with a burst of upcoming interactions on another QPU can be
// teleported there — one EPR pair moves the qubit and the burst becomes
// local. This is the trade-off Autocomm (Wu et al., MICRO 2022)
// optimizes and the remote-SWAP substitution of Baker et al.; CloudQC's
// paper treats all remote gates as cat-entangler operations, so this is
// an extension with its own ablation.

// PlanOptions tunes the migration heuristic.
type PlanOptions struct {
	// Lookahead bounds how many upcoming gates are scanned when counting
	// a pair's interaction burst (default 12).
	Lookahead int
	// MinBurst is the number of consecutive same-pair remote gates that
	// justifies a teleport (default 2: one teleport EPR replaces >= 2
	// gate EPRs).
	MinBurst int
}

// DefaultPlanOptions returns the migration defaults.
func DefaultPlanOptions() PlanOptions {
	return PlanOptions{Lookahead: 12, MinBurst: 2}
}

func (o PlanOptions) withDefaults() PlanOptions {
	d := DefaultPlanOptions()
	if o.Lookahead <= 0 {
		o.Lookahead = d.Lookahead
	}
	if o.MinBurst <= 0 {
		o.MinBurst = d.MinBurst
	}
	return o
}

// MigrationStats reports what the planner did.
type MigrationStats struct {
	// Teleports is the number of qubit migrations inserted.
	Teleports int
	// RemoteGates is the number of gates still executed remotely.
	RemoteGates int
	// LocalizedGates is the number of formerly-remote gates made local
	// by migrations.
	LocalizedGates int
	// FinalAssign is the qubit->QPU map after all migrations.
	FinalAssign []int
}

// BuildMigratingDAG contracts a placed circuit into a remote DAG like
// BuildRemoteDAG, but walks the gate stream with a dynamic qubit->QPU
// assignment: when a remote gate opens a burst of at least MinBurst
// interactions between the same qubit pair, and the partner QPU has a
// free computing qubit, one qubit teleports (a Teleport node consuming
// one EPR on the QPU path) and the burst executes locally.
//
// Teleport nodes reuse the RemoteGate machinery (they occupy the same
// EPR rounds and swap latency), flagged via RemoteGate.Teleport, so the
// unmodified executor and policies run migration plans directly.
func BuildMigratingDAG(c *circuit.Circuit, cl *cloud.Cloud, assign []int, lat epr.Latency, opt PlanOptions) (*RemoteDAG, *MigrationStats) {
	opt = opt.withDefaults()
	n := c.NumQubits()
	cur := append([]int(nil), assign...)
	// Free computing slots per QPU beyond the circuit's own footprint.
	free := make([]int, cl.NumQPUs())
	for i := range free {
		free[i] = cl.FreeComputing(i)
	}
	for _, q := range cur {
		free[q]--
	}

	d := &RemoteDAG{}
	stats := &MigrationStats{}
	frontier := make([][]int, n)
	lag := make([]float64, n)
	gates := c.Gates()

	addNode := func(node RemoteGate, parents []int, qubits ...int) int {
		id := len(d.Nodes)
		node.ID = id
		d.Nodes = append(d.Nodes, node)
		d.Succs = append(d.Succs, nil)
		d.Preds = append(d.Preds, parents)
		for _, p := range parents {
			d.Succs[p] = append(d.Succs[p], id)
		}
		for _, q := range qubits {
			frontier[q] = []int{id}
			lag[q] = 0
		}
		return id
	}

	for gi, g := range gates {
		switch {
		case g.Kind == circuit.Two && cur[g.Qubits[0]] != cur[g.Qubits[1]]:
			a, b := g.Qubits[0], g.Qubits[1]
			if mover, dest := teleportChoice(gates, gi, a, b, cur, free, opt); mover >= 0 {
				// Teleport node: depends on the moving qubit's history
				// only; the EPR spans the current QPU pair.
				src := cur[mover]
				tele := RemoteGate{
					GateIndex: gi,
					Path:      cl.Path(src, dest),
					Lag:       lag[mover],
					Teleport:  true,
				}
				addNode(tele, append([]int(nil), frontier[mover]...), mover)
				free[src]++
				free[dest]--
				cur[mover] = dest
				stats.Teleports++
				// The triggering gate is now local.
				t := maxf(lag[a], lag[b]) + lat.GateDuration(g.Kind)
				merged := mergeSorted(frontier[a], frontier[b])
				frontier[a] = merged
				frontier[b] = append([]int(nil), merged...)
				lag[a], lag[b] = t, t
				stats.LocalizedGates++
				continue
			}
			node := RemoteGate{
				GateIndex: gi,
				Path:      cl.Path(cur[a], cur[b]),
				Lag:       maxf(lag[a], lag[b]),
			}
			addNode(node, mergeSorted(frontier[a], frontier[b]), a, b)
			stats.RemoteGates++
		case g.Kind == circuit.Two:
			a, b := g.Qubits[0], g.Qubits[1]
			merged := mergeSorted(frontier[a], frontier[b])
			t := maxf(lag[a], lag[b]) + lat.GateDuration(g.Kind)
			frontier[a] = merged
			frontier[b] = append([]int(nil), merged...)
			lag[a], lag[b] = t, t
			if assign[a] != assign[b] { // was remote under the static plan
				stats.LocalizedGates++
			}
		default:
			lag[g.Qubits[0]] += lat.GateDuration(g.Kind)
		}
	}

	for q := 0; q < n; q++ {
		if lag[q] > d.Tail {
			d.Tail = lag[q]
		}
	}
	if len(d.Nodes) == 0 {
		dag := circuit.BuildDAG(c)
		d.LocalOnly, _ = dag.CriticalPath(func(i int) float64 {
			return lat.GateDuration(gates[i].Kind)
		})
		d.Tail = 0
	}
	stats.FinalAssign = cur
	return d, stats
}

// teleportChoice decides whether the remote gate at index gi between
// qubits a and b should trigger a migration. It returns the qubit to
// move and its destination QPU, or (-1, -1) to execute remotely.
//
// The burst is counted by scanning ahead: consecutive two-qubit gates
// between exactly a and b extend it; any other two-qubit gate touching
// a or b ends it; unrelated gates are skipped.
func teleportChoice(gates []circuit.Gate, gi, a, b int, cur, free []int, opt PlanOptions) (mover, dest int) {
	burst := 1
	scanned := 0
	for i := gi + 1; i < len(gates) && scanned < opt.Lookahead; i++ {
		g := gates[i]
		scanned++
		if g.Kind != circuit.Two {
			if g.On(a) || g.On(b) {
				continue // 1q gates and measures don't break a burst
			}
			continue
		}
		onA, onB := g.On(a), g.On(b)
		switch {
		case onA && onB:
			burst++
		case onA || onB:
			scanned = opt.Lookahead // third-party interaction: burst over
		}
	}
	if burst < opt.MinBurst {
		return -1, -1
	}
	// Prefer moving a into b's QPU; fall back to the reverse.
	if free[cur[b]] > 0 {
		return a, cur[b]
	}
	if free[cur[a]] > 0 {
		return b, cur[a]
	}
	return -1, -1
}

package sched

import (
	"math/rand"
	"testing"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/epr"
	"cloudqc/internal/graph"
)

// sureModel returns a model whose EPR attempts always succeed, so
// checkpoint tests drive execution deterministically.
func sureModel() epr.Model {
	m := epr.DefaultModel()
	m.SuccessProb = 1
	return m
}

// driveRound runs one EPR round granting every ready node one pair.
func driveRound(s *JobState, t float64, m epr.Model, rng *rand.Rand) {
	for _, u := range s.Ready(t) {
		s.Attempt(u, 1, t, m, rng)
	}
}

func TestCheckpointableDetectsInFlight(t *testing.T) {
	// A 2-hop remote gate: qubits on QPUs 0 and 2 of a path topology.
	cl := cloud.New(graph.Path(3), 10, 5)
	c := circuit.New("hop2", 2)
	c.Append(circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 2}, epr.DefaultLatency())
	if d.Len() != 1 || d.Nodes[0].Hops() != 2 {
		t.Fatalf("setup: len=%d hops=%d, want 1 node with 2 hops", d.Len(), d.Nodes[0].Hops())
	}
	s := NewJobState(d, 0)
	if !s.Checkpointable() {
		t.Fatal("fresh state must be checkpointable")
	}
	// A fully failed round leaves nothing banked: still checkpointable.
	s.attempted[0] = true
	if !s.Checkpointable() {
		t.Fatal("attempted-but-unprogressed state must be checkpointable")
	}
	// One of two hops entangled: in-flight, not checkpointable.
	s.hopsLeft[0] = 1
	if s.Checkpointable() {
		t.Fatal("partially entangled multi-hop gate must block checkpointing")
	}
	// Gate finished: checkpointable again.
	s.hopsLeft[0] = 0
	if !s.Checkpointable() {
		t.Fatal("completed state must be checkpointable")
	}
}

func TestCheckpointRoundtripSamePlacement(t *testing.T) {
	// Two dependent remote gates on the same qubit pair.
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("chain", 2)
	c.Append(circuit.CX(0, 1), circuit.CX(0, 1))
	d := BuildRemoteDAG(c, cl, []int{0, 1}, epr.DefaultLatency())
	if d.Len() != 2 {
		t.Fatalf("setup: %d remote gates, want 2", d.Len())
	}
	m := sureModel()
	rng := rand.New(rand.NewSource(1))
	s1 := NewJobState(d, 0)
	driveRound(s1, 0, m, rng)
	if s1.remaining != 1 {
		t.Fatalf("after one sure round remaining = %d, want 1", s1.remaining)
	}
	if !s1.Checkpointable() {
		t.Fatal("round boundary must be checkpointable")
	}
	cp := s1.Checkpoint()
	if len(cp.Done) != 1 || cp.Done[0] != d.Nodes[0].GateIndex {
		t.Fatalf("Checkpoint().Done = %v, want [%d]", cp.Done, d.Nodes[0].GateIndex)
	}

	// Resume onto a fresh state for the same placement at a later time.
	s2 := new(JobState)
	s2.Reinit(d, nil, 100)
	s2.ApplyCheckpoint(cp, 100)
	if s2.remaining != s1.remaining {
		t.Fatalf("resumed remaining = %d, want %d", s2.remaining, s1.remaining)
	}
	if s2.hopsLeft[0] != 0 {
		t.Fatal("checkpointed node must be complete after ApplyCheckpoint")
	}
	// The successor must have been unblocked and the job must run dry.
	for i := 0; i < 100 && !s2.Done(); i++ {
		at, ok := s2.NextEnableTime(100)
		if !ok {
			t.Fatalf("resumed job stalled with %d remaining", s2.remaining)
		}
		driveRound(s2, at, m, rng)
	}
	if !s2.Done() {
		t.Fatal("resumed job never completed")
	}
	if jct := s2.JCT(); jct <= 100 {
		t.Fatalf("resumed JCT = %v, want > resume time 100", jct)
	}
}

func TestCheckpointPlacementIndependent(t *testing.T) {
	// CX(0,1) then CX(1,2): placement A makes only the first gate
	// remote, placement B only the second. A checkpoint taken under one
	// placement must replay correctly onto the other's remote DAG, keyed
	// by circuit gate index rather than DAG node id.
	cl := cloud.New(graph.Path(2), 10, 5)
	c := circuit.New("xover", 3)
	c.Append(circuit.CX(0, 1), circuit.CX(1, 2))
	dagA := BuildRemoteDAG(c, cl, []int{0, 1, 1}, epr.DefaultLatency())
	dagB := BuildRemoteDAG(c, cl, []int{0, 0, 1}, epr.DefaultLatency())
	if dagA.Len() != 1 || dagB.Len() != 1 {
		t.Fatalf("setup: lenA=%d lenB=%d, want 1 and 1", dagA.Len(), dagB.Len())
	}
	m := sureModel()
	rng := rand.New(rand.NewSource(1))

	// Complete gate 0 under A and checkpoint.
	sA := NewJobState(dagA, 0)
	driveRound(sA, 0, m, rng)
	if !sA.Done() {
		t.Fatal("placement A's single remote gate should finish in one sure round")
	}
	cp := sA.Checkpoint()
	if len(cp.Done) != 1 || cp.Done[0] != 0 {
		t.Fatalf("Checkpoint().Done = %v, want [0]", cp.Done)
	}

	// Resume under B: gate 0 is local there (no node to mark), gate 1 is
	// remote and still outstanding.
	sB := new(JobState)
	sB.Reinit(dagB, nil, 50)
	sB.ApplyCheckpoint(cp, 50)
	if sB.remaining != 1 {
		t.Fatalf("resumed-under-B remaining = %d, want 1 (gate 1 must re-run remotely)", sB.remaining)
	}
	if sB.hopsLeft[0] == 0 {
		t.Fatal("gate 1's node must not be marked done by gate 0's checkpoint entry")
	}

	// And the reverse direction: a checkpoint of gate 1 under B marks
	// B's gate-index-1 node done under a fresh B state.
	for i := 0; i < 100 && !sB.Done(); i++ {
		at, ok := sB.NextEnableTime(50)
		if !ok {
			t.Fatalf("resumed-under-B job stalled with %d remaining", sB.remaining)
		}
		driveRound(sB, at, m, rng)
	}
	cpB := sB.Checkpoint()
	if len(cpB.Done) != 1 || cpB.Done[0] != 1 {
		t.Fatalf("B checkpoint Done = %v, want [1]", cpB.Done)
	}
	sB2 := new(JobState)
	sB2.Reinit(dagB, nil, 60)
	sB2.ApplyCheckpoint(cpB, 60)
	if !sB2.Done() {
		t.Fatal("replaying B's own checkpoint must complete the job")
	}
}

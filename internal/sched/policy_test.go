package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func req(job, node, prio int, path ...int) Request {
	return Request{Key: NodeKey{Job: job, Node: node}, Path: path, Priority: prio}
}

func sumAlloc(alloc map[NodeKey]int) int {
	total := 0
	for _, v := range alloc {
		total += v
	}
	return total
}

// consumption verifies no QPU's budget went negative and returns usage.
func checkBudget(t *testing.T, alloc map[NodeKey]int, reqs []Request, original []int) {
	t.Helper()
	used := make([]int, len(original))
	for _, r := range reqs {
		for _, q := range r.Path {
			used[q] += alloc[r.Key]
		}
	}
	for q := range used {
		if used[q] > original[q] {
			t.Fatalf("QPU %d used %d of %d", q, used[q], original[q])
		}
	}
}

func TestCloudQCStarvationFreedom(t *testing.T) {
	// Two gates on the same QPU pair with very different priorities:
	// both must get at least one pair when the budget allows.
	reqs := []Request{req(0, 0, 10, 0, 1), req(0, 1, 0, 0, 1)}
	budget := []int{5, 5}
	orig := append([]int(nil), budget...)
	alloc := CloudQCPolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{0, 0}] < 1 || alloc[NodeKey{0, 1}] < 1 {
		t.Fatalf("starvation: alloc = %v", alloc)
	}
	checkBudget(t, alloc, reqs, orig)
}

func TestCloudQCPriorityGetsMore(t *testing.T) {
	reqs := []Request{req(0, 0, 9, 0, 1), req(0, 1, 0, 0, 1)}
	budget := []int{10, 10}
	alloc := CloudQCPolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{0, 0}] <= alloc[NodeKey{0, 1}] {
		t.Fatalf("high priority should receive more: %v", alloc)
	}
	if sumAlloc(alloc) != 10 {
		t.Fatalf("full budget should be used: %v", alloc)
	}
}

func TestGreedyTakesAll(t *testing.T) {
	reqs := []Request{req(0, 0, 5, 0, 1), req(0, 1, 1, 0, 1)}
	budget := []int{4, 4}
	alloc := GreedyPolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{0, 0}] != 4 {
		t.Fatalf("greedy should give everything to top priority: %v", alloc)
	}
	if alloc[NodeKey{0, 1}] != 0 {
		t.Fatalf("greedy should starve the rest this round: %v", alloc)
	}
}

func TestGreedySpillsToDisjointPaths(t *testing.T) {
	// Top priority saturates QPUs 0-1; a gate on QPUs 2-3 still gets
	// pairs from its own budget.
	reqs := []Request{req(0, 0, 5, 0, 1), req(0, 1, 1, 2, 3)}
	budget := []int{2, 2, 3, 3}
	alloc := GreedyPolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{0, 0}] != 2 || alloc[NodeKey{0, 1}] != 3 {
		t.Fatalf("alloc = %v", alloc)
	}
}

func TestAverageEvenSplit(t *testing.T) {
	reqs := []Request{req(0, 0, 9, 0, 1), req(0, 1, 0, 0, 1)}
	budget := []int{6, 6}
	alloc := AveragePolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{0, 0}] != 3 || alloc[NodeKey{0, 1}] != 3 {
		t.Fatalf("average should split evenly regardless of priority: %v", alloc)
	}
}

func TestRandomExhaustsBudget(t *testing.T) {
	reqs := []Request{req(0, 0, 2, 0, 1), req(0, 1, 1, 0, 1)}
	budget := []int{4, 4}
	orig := append([]int(nil), budget...)
	alloc := RandomPolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(3)))
	if sumAlloc(alloc) != 4 {
		t.Fatalf("random should hand out the full shared budget: %v", alloc)
	}
	checkBudget(t, alloc, reqs, orig)
}

func TestMultiHopConsumesIntermediates(t *testing.T) {
	// One gate across a 2-hop path 0-1-2: each pair consumes a qubit on
	// all three QPUs.
	reqs := []Request{req(0, 0, 1, 0, 1, 2)}
	budget := []int{3, 2, 3}
	alloc := GreedyPolicy{}.Allocate(reqs, budget, rand.New(rand.NewSource(1)))
	if alloc[NodeKey{0, 0}] != 2 {
		t.Fatalf("allocation limited by intermediate QPU: %v", alloc)
	}
	if budget[1] != 0 {
		t.Fatalf("intermediate budget = %d, want 0", budget[1])
	}
}

func TestPoliciesDeterministicGivenSeed(t *testing.T) {
	reqs := []Request{
		req(0, 0, 3, 0, 1), req(0, 1, 2, 1, 2), req(1, 0, 1, 0, 2),
	}
	for _, p := range []Policy{CloudQCPolicy{}, GreedyPolicy{}, AveragePolicy{}, RandomPolicy{}} {
		b1 := []int{4, 4, 4}
		b2 := []int{4, 4, 4}
		a1 := p.Allocate(reqs, b1, rand.New(rand.NewSource(9)))
		a2 := p.Allocate(reqs, b2, rand.New(rand.NewSource(9)))
		for k, v := range a1 {
			if a2[k] != v {
				t.Fatalf("%s not deterministic: %v vs %v", p.Name(), a1, a2)
			}
		}
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]Policy{
		"CloudQC": CloudQCPolicy{},
		"Greedy":  GreedyPolicy{},
		"Average": AveragePolicy{},
		"Random":  RandomPolicy{},
	}
	for name, p := range want {
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
	}
}

// Property: no policy ever over-consumes any QPU's budget, and every
// allocation is non-negative.
func TestQuickPoliciesRespectBudget(t *testing.T) {
	policies := []Policy{CloudQCPolicy{}, GreedyPolicy{}, AveragePolicy{}, RandomPolicy{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nQPU := 3 + rng.Intn(4)
		var reqs []Request
		for i := 0; i < 2+rng.Intn(6); i++ {
			a := rng.Intn(nQPU)
			b := rng.Intn(nQPU)
			if a == b {
				b = (b + 1) % nQPU
			}
			reqs = append(reqs, req(0, i, rng.Intn(5), a, b))
		}
		for _, p := range policies {
			budget := make([]int, nQPU)
			orig := make([]int, nQPU)
			for i := range budget {
				budget[i] = 1 + rng.Intn(6)
				orig[i] = budget[i]
			}
			alloc := p.Allocate(reqs, budget, rand.New(rand.NewSource(seed)))
			used := make([]int, nQPU)
			for _, r := range reqs {
				if alloc[r.Key] < 0 {
					return false
				}
				for _, q := range r.Path {
					used[q] += alloc[r.Key]
				}
			}
			for q := range used {
				if used[q] > orig[q] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

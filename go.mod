module cloudqc

go 1.24

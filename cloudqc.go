// Package cloudqc is a network-aware framework for multi-tenant
// distributed quantum computing, reproducing "CloudQC: A Network-aware
// Framework for Multi-tenant Distributed Quantum Computing" (ICDCS
// 2025).
//
// A quantum cloud is a cluster of QPUs — each with computing qubits and
// communication qubits — connected by quantum links. Jobs are quantum
// circuits; a circuit larger than any single QPU is partitioned across
// several, turning some two-qubit gates into remote gates that consume
// probabilistically generated EPR pairs. CloudQC contributes:
//
//   - Circuit placement (Algorithm 1/2): sweep graph-partition
//     granularities, find feasible QPU sets by modularity community
//     detection over a capacity-weighted topology, map partition centers
//     to community centers, and score candidates by estimated runtime
//     and communication cost.
//   - Network scheduling (Algorithm 3): contract the placed circuit to a
//     remote DAG, prioritize gates by longest path to a leaf, and divide
//     each QPU's communication qubits across competing gates every EPR
//     round — redundant pairs go to critical gates, and no gate starves.
//   - A multi-tenant controller: batch ordering by the intensity metric
//     (Eq. 11), FIFO mode, placement retries as capacity frees, and
//     cross-tenant communication-qubit contention. The controller is
//     event-driven (a discrete-event engine schedules arrivals,
//     releases, and EPR rounds), so idle spans cost nothing to simulate.
//
// The minimal pipeline:
//
//	cl := cloudqc.NewRandomCloud(20, 0.3, 20, 5, 1)
//	circ, _ := cloudqc.BuildCircuit("qft_n63")
//	res, _ := cloudqc.PlaceAndSchedule(cl, circ, cloudqc.DefaultModel(), 1)
//	fmt.Println(res.JCT)
//
// For multi-tenant workloads, assemble a Cluster (see NewCluster) and
// submit Jobs. Jobs may all arrive at time 0 (the paper's batch setting)
// or carry Arrival times for the online "incoming jobs" setting: sample
// timed streams with OnlineJobs (Poisson, uniform-rate, or bursty
// arrival processes) and summarize the outcome with AggregateOnline.
// Jobs may also carry a Tenant, a Priority (fair-share weight), and an
// SLO Deadline: sample heterogeneous tenant mixes with MultiTenantJobs,
// admit with EDFMode (earliest deadline first) or WFQMode (weighted
// fair queueing across tenants), bound cross-tenant starvation inside
// each EPR round with PolicyTenantWeighted, and summarize deadline
// attainment and Jain fairness with Outcomes + AggregateSLO.
// For the paper's tables and figures, see the cloudqc CLI (cmd/cloudqc,
// including its online and slo modes) and the root-level benchmarks.
package cloudqc

import (
	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/epr"
	"cloudqc/internal/fault"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/plan"
	"cloudqc/internal/sched"
	"cloudqc/internal/service"
	"cloudqc/internal/simq"
	"cloudqc/internal/trace"
	"cloudqc/internal/workload"
)

// Core model types, aliased from the implementation packages so the
// whole framework is usable through this single import.
type (
	// Circuit is a gate-list quantum circuit over a fixed register.
	Circuit = circuit.Circuit
	// Gate is one operation on one or two qubits.
	Gate = circuit.Gate
	// Cloud is a cluster of QPUs connected by quantum links.
	Cloud = cloud.Cloud
	// QPU is one quantum processing unit.
	QPU = cloud.QPU
	// Latency is the operation latency table (paper Table I).
	Latency = epr.Latency
	// Model combines latencies with the EPR success probability.
	Model = epr.Model
	// Placement maps a circuit's qubits onto QPUs.
	Placement = place.Placement
	// Placer is a circuit placement algorithm.
	Placer = place.Placer
	// PlacerConfig parameterizes the CloudQC placer.
	PlacerConfig = place.Config
	// RemoteDAG is the dependency graph over a placement's remote gates.
	RemoteDAG = sched.RemoteDAG
	// Policy divides communication qubits among competing remote gates.
	Policy = sched.Policy
	// ScheduleResult summarizes one network-scheduling run.
	ScheduleResult = sched.Result
	// Job is one tenant's circuit submission.
	Job = core.Job
	// JobResult reports a job's completion time and placement.
	JobResult = core.JobResult
	// Cluster is the multi-tenant controller.
	Cluster = core.Controller
	// ClusterConfig assembles a Cluster.
	ClusterConfig = core.Config
	// Workload is a named pool of benchmark circuits.
	Workload = workload.Workload
	// Topology is a weighted undirected graph of quantum links.
	Topology = graph.Graph
	// FidelityModel extends Model with link fidelity and purification.
	FidelityModel = epr.FidelityModel
	// QuantumState is a dense state vector for semantic simulation of
	// small circuits.
	QuantumState = simq.State
	// UtilizationRecorder samples cloud utilization during multi-tenant
	// runs.
	UtilizationRecorder = metrics.Recorder
	// OnlineStats aggregates an online run's job stream: throughput,
	// JCT percentiles, wait times.
	OnlineStats = metrics.OnlineStats
	// AdmissionMode selects the Cluster's job admission order (batch,
	// FIFO, EDF, or WFQ).
	AdmissionMode = core.Mode
	// TenantSpec describes one tenant of a multi-tenant mix: circuit
	// pool, arrival process, scheduling weight, deadline distribution.
	TenantSpec = workload.TenantSpec
	// JobOutcome is one job's fate in the form the SLO aggregator
	// consumes.
	JobOutcome = metrics.JobOutcome
	// SLOStats summarizes deadline attainment, cross-tenant fairness,
	// and per-tenant breakdowns of a tenant-aware run.
	SLOStats = metrics.SLOStats
	// TenantSLO is one tenant's slice of an SLO summary.
	TenantSLO = metrics.TenantSLO
	// ClusterRunStats counts the scheduling rounds and events of a
	// Cluster's last run.
	ClusterRunStats = core.RunStats
	// PlanCacheStats reports the compile-once plan cache's hit, miss,
	// and eviction counters plus its occupancy: the cache memoizes
	// placement and remote-DAG construction per (circuit fingerprint,
	// cloud shape, free-capacity signature), so repeated circuit
	// templates admit without re-running the placement pipeline —
	// bit-identically to uncached runs. Read it from
	// Cluster.PlanCacheStats / LiveController.PlanCacheStats, size it
	// with ClusterConfig.PlanCacheSize (or ServiceConfig.PlanCacheSize
	// for the HTTP service, which also reports it on GET /v1/stats).
	PlanCacheStats = plan.Stats
	// CircuitFingerprint canonically identifies a circuit's structure
	// (register size, gate count, gate-sequence hash); identical
	// templates fingerprint identically regardless of job identity.
	CircuitFingerprint = circuit.Fingerprint
	// MigrationStats reports what the teleportation planner did.
	MigrationStats = sched.MigrationStats
	// LiveController is the incremental multi-tenant controller behind
	// the job service: jobs are submitted at any virtual time
	// (Submit), the clock advances in steps (StepUntil), and the
	// backlog can be run dry (Drain) — bit-identical to Cluster.Run
	// when fed the same stream at the same arrival times.
	LiveController = core.LiveController
	// JobStatus is a live job's lifecycle state (pending, queued,
	// running, completed, failed).
	JobStatus = core.JobStatus
	// LiveSnapshot is one instant of a live cluster's state.
	LiveSnapshot = core.LiveSnapshot
	// QPULoad is one QPU's capacity and current reservation in a live
	// cluster view.
	QPULoad = core.QPULoad
	// ServiceConfig assembles the HTTP job-submission service: live
	// controller, virtual-time scale, per-tenant rate limit and quota.
	ServiceConfig = service.Config
	// JobService serves a LiveController over HTTP JSON
	// (POST /v1/jobs, GET /v1/jobs/{id}, /v1/stats, /v1/cluster); it
	// implements http.Handler. The cloudqcd daemon is its standalone
	// wrapper.
	JobService = service.Server
	// Federation is the federated controller tier: N shard controllers
	// over N shard clouds behind one admission router, with WFQ billing
	// into a shared virtual-clock space so weighted fairness holds
	// federation-wide. A 1-shard Federation is bit-identical to the
	// LiveController it wraps.
	Federation = fed.Federation
	// FederationConfig assembles a Federation: the per-shard
	// ClusterConfig template, the shard clouds, routing, spill depth.
	FederationConfig = fed.Config
	// FederationShard is one shard of a Federation: its controller plus
	// the load/queue-depth/plan-cache signals the router reads.
	FederationShard = core.Shard
	// ShardSignals is one shard's routing signal snapshot.
	ShardSignals = core.ShardSignals
	// RoutingMode selects the federation's admission routing (affinity
	// or random).
	RoutingMode = fed.Routing
	// RouterStats are the admission router's decision counters.
	RouterStats = fed.RouterStats
	// WFQClock is the shared per-tenant virtual-clock space WFQ
	// controllers bill into; hand one clock to several controllers (or
	// let a Federation do it) to extend weighted fairness across them.
	WFQClock = core.WFQClock
	// PreemptPolicy selects checkpoint-based preemption at EPR-round
	// boundaries (off, deadline-rescue, or priority); set it via
	// ClusterConfig.Preempt.
	PreemptPolicy = core.PreemptPolicy
	// PreemptStats counts preemptions, resumes, and rescued deadlines
	// (Cluster.PreemptStats / LiveController.PreemptStats /
	// Federation.PreemptStats; the HTTP service reports it on
	// GET /v1/stats).
	PreemptStats = core.PreemptStats
	// TraceRecorder records deterministic virtual-time execution spans
	// for every job a controller runs: queue wait, admission decision,
	// compiles, EPR rounds, suspensions, cross-shard rehomes, and a JCT
	// attribution whose phases sum to the JCT exactly. Attach one via
	// ClusterConfig.Trace or FederationConfig.Trace (shared across
	// shards); nil keeps tracing off at zero hot-path cost. The HTTP
	// service serves traces on GET /v1/jobs/{id}/trace.
	TraceRecorder = trace.Recorder
	// JobTrace is one job's recorded span tree.
	JobTrace = trace.JobTrace
	// JCTAttribution splits one job's completion time into queue /
	// compile / local-compute / network-stall / suspended phases.
	JCTAttribution = trace.Attribution
	// TenantAttribution is one tenant's exact per-phase attribution
	// aggregate over its settled traces.
	TenantAttribution = trace.TenantAttribution
	// FaultPlan is a deterministic virtual-time fault schedule — QPU
	// outages, link degradations, federation shard drains — plus the
	// recovery knobs it exercises (checkpoint-rescue vs fail, bounded
	// retry, dead-edge route-around). Set it via ClusterConfig.Faults
	// (core-tier faults) or FederationConfig.Faults (the federation
	// splits the plan per shard and intercepts shard drains); nil keeps
	// every fault hook dormant at zero cost, bit-identically to the
	// fault-free controller.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fault of a FaultPlan, or one live
	// injection (Federation.Inject; POST /v1/faults on the service).
	FaultEvent = fault.Event
	// FaultStats counts injected faults by kind and the recovery work
	// they forced (Cluster.FaultStats / LiveController.FaultStats /
	// Federation.FaultStats; the HTTP service reports it on
	// GET /v1/stats).
	FaultStats = fault.Stats
)

// ErrDrained reports an operation on a live controller or federation
// whose Drain already ran; the HTTP service maps it to 409 Conflict.
var ErrDrained = core.ErrDrained

// Lifecycle states of a job in a LiveController / JobService.
const (
	// StatusUnknown: the id was never submitted (Status's zero answer).
	StatusUnknown = core.StatusUnknown
	// StatusPending: submitted, arrival still in the virtual future.
	StatusPending = core.StatusPending
	// StatusQueued: arrived, waiting for placement.
	StatusQueued = core.StatusQueued
	// StatusRunning: holding computing qubits, executing.
	StatusRunning = core.StatusRunning
	// StatusCompleted: finished; the JobResult is final.
	StatusCompleted = core.StatusCompleted
	// StatusFailed: can never be placed.
	StatusFailed = core.StatusFailed
)

// Admission modes for the multi-tenant controller.
const (
	// BatchMode orders waiting jobs by the paper's intensity metric.
	BatchMode = core.BatchMode
	// FIFOMode admits jobs strictly in arrival order.
	FIFOMode = core.FIFOMode
	// EDFMode admits waiting jobs earliest-deadline-first (Job.Deadline;
	// jobs without deadlines last).
	EDFMode = core.EDFMode
	// WFQMode is weighted fair queueing across tenants: admission is
	// served in proportion to tenant Priority via start-time fair
	// queueing over per-tenant virtual service.
	WFQMode = core.WFQMode
)

// Preemption policies for the multi-tenant controller (Run,
// LiveController, and Federation alike). With PreemptOff the controller
// is bit-identical to run-to-completion execution.
const (
	// PreemptOff disables preemption: placements are final.
	PreemptOff = core.PreemptOff
	// PreemptRescue lets a queued job with a live deadline
	// checkpoint-and-displace running jobs with strictly later deadlines.
	PreemptRescue = core.PreemptRescue
	// PreemptPriority lets a queued job displace running jobs of
	// strictly lower tenant weight.
	PreemptPriority = core.PreemptPriority
)

// ParsePreemptPolicy maps a policy name — "off" (or empty), "rescue",
// or "priority" — to its PreemptPolicy.
func ParsePreemptPolicy(s string) (PreemptPolicy, error) { return core.ParsePreempt(s) }

// Fault kinds and recovery policies (FaultEvent.Kind, FaultPlan.Recovery).
const (
	// FaultQPUOutage takes one QPU down for an interval; resident jobs
	// are checkpoint-rescued (or failed under FaultRecoveryNone).
	FaultQPUOutage = fault.KindQPUOutage
	// FaultLinkDegrade scales one link's EPR success probability (0
	// kills it) for an interval.
	FaultLinkDegrade = fault.KindLinkDegrade
	// FaultShardDrain evacuates one federation shard: resident jobs
	// checkpoint and rehome through the router, then the shard leaves
	// the routing set.
	FaultShardDrain = fault.KindShardDrain
	// FaultRecoveryRescue checkpoints jobs evicted by an outage and
	// re-enqueues them (the default).
	FaultRecoveryRescue = fault.RecoveryRescue
	// FaultRecoveryNone fails evicted jobs outright (the ablation arm).
	FaultRecoveryNone = fault.RecoveryNone
)

// LoadFaultPlan reads and validates a JSON fault plan file (the
// cloudqcd -faults flag's format).
func LoadFaultPlan(path string) (*FaultPlan, error) { return fault.Load(path) }

// Federation admission-routing modes.
const (
	// RouteAffinity routes each job to the shard that last served its
	// (tenant, circuit fingerprint) pair — plan-cache locality — with
	// load spillover; the default.
	RouteAffinity = fed.RouteAffinity
	// RouteRandom routes uniformly at random (seeded): the ablation arm.
	RouteRandom = fed.RouteRandom
	// DefaultSpillDepth is the affinity router's backlog slack when
	// FederationConfig.SpillDepth is zero.
	DefaultSpillDepth = fed.DefaultSpillDepth
)

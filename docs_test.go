package cloudqc

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks resolves every relative link in README.md and
// docs/*.md against the repo tree, so renames and deleted files fail CI
// instead of 404ing for readers. External (http/https) links and pure
// in-page anchors are skipped — CI has no network and anchor slugs are
// renderer-specific.
func TestMarkdownLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found; the docs tier is missing")
	}

	linkRe := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s unreadable: %v", file, err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-page anchor off a file link.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", file, m[1], err)
			}
		}
	}
}

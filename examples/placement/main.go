// Placement comparison: reproduce one row of the paper's Table III by
// placing a single circuit with all five placement algorithms and
// counting remote operations.
//
// Run with: go run ./examples/placement [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"cloudqc"
)

func main() {
	name := "qugan_n71"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	circ, err := cloudqc.BuildCircuit(name)
	if err != nil {
		log.Fatal(err)
	}

	placers := []cloudqc.Placer{
		cloudqc.NewAnnealerPlacer(1),
		cloudqc.NewRandomPlacer(1),
		cloudqc.NewGeneticPlacer(1),
		cloudqc.NewBFSPlacer(cloudqc.DefaultPlacerConfig()),
		cloudqc.NewPlacer(cloudqc.DefaultPlacerConfig()),
	}

	fmt.Printf("single-circuit placement of %s (%d qubits, %d two-qubit gates)\n\n",
		name, circ.NumQubits(), circ.TwoQubitGateCount())
	fmt.Printf("%-12s  %-10s  %-10s  %s\n", "method", "remoteOps", "commCost", "QPUs")
	for _, p := range placers {
		// A fresh cloud per method: each sees identical free resources.
		cl := cloudqc.NewRandomCloud(20, 0.3, 20, 5, 7)
		pl, err := p.Place(cl, circ)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		fmt.Printf("%-12s  %-10d  %-10.0f  %d\n",
			p.Name(),
			cloudqc.RemoteOps(circ, pl.QubitToQPU),
			cloudqc.CommCost(circ, cl, pl.QubitToQPU),
			len(pl.UsedQPUs()))
	}
}

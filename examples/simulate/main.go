// Simulation + fidelity: semantically execute small benchmark circuits
// on the built-in state-vector simulator, then schedule a distributed
// job under a link-fidelity constraint to see what entanglement
// purification costs.
//
// Run with: go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	"cloudqc"
)

func main() {
	// Part 1: the generators are semantically real circuits — Grover
	// search amplifies its marked item, measurably.
	grover, err := cloudqc.BuildCircuit("grover_n8")
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	const shots = 50
	for seed := int64(0); seed < shots; seed++ {
		_, outcomes := cloudqc.Simulate(grover, seed)
		allOnes := true
		for q := 0; q < 4; q++ { // 4 data qubits
			if outcomes[q] != 1 {
				allOnes = false
				break
			}
		}
		if allOnes {
			hits++
		}
	}
	fmt.Printf("grover_n8: marked state found in %d/%d shots (uniform would be ~%d)\n",
		hits, shots, shots/16)

	// Part 2: schedule a distributed circuit with and without a
	// fidelity threshold. Purification multiplies the EPR pairs each
	// remote gate needs, and the JCT shows the price.
	cl := cloudqc.NewRandomCloud(20, 0.3, 20, 5, 7)
	circ, err := cloudqc.BuildCircuit("knn_n67")
	if err != nil {
		log.Fatal(err)
	}
	pl, err := cloudqc.NewRandomPlacer(7).Place(cl, circ) // scattered: multi-hop gates
	if err != nil {
		log.Fatal(err)
	}
	dag := cloudqc.BuildRemoteDAG(circ, cl, pl.QubitToQPU, cloudqc.DefaultModel().Latency)

	const reps = 10
	meanPlain := 0.0
	for seed := int64(0); seed < reps; seed++ {
		res, err := cloudqc.Schedule(dag, cl, cloudqc.DefaultModel(), cloudqc.PolicyCloudQC(), seed)
		if err != nil {
			log.Fatal(err)
		}
		meanPlain += res.JCT / reps
	}
	fmt.Printf("\nknn_n67 scattered across %d QPUs, %d remote gates (mean of %d runs)\n",
		len(pl.UsedQPUs()), dag.Len(), reps)
	fmt.Printf("%-28s JCT %8.1f\n", "no fidelity constraint:", meanPlain)

	for _, lf := range []float64{0.99, 0.9, 0.8} {
		fm := cloudqc.DefaultFidelityModel()
		fm.LinkFidelity = lf
		fm.Threshold = 0.9
		mean := 0.0
		for seed := int64(0); seed < reps; seed++ {
			res, err := cloudqc.ScheduleWithFidelity(dag, cl, fm, cloudqc.PolicyCloudQC(), seed)
			if err != nil {
				log.Fatal(err)
			}
			mean += res.JCT / reps
		}
		fmt.Printf("link fidelity %.2f -> 0.90:    JCT %8.1f (%.2fx)\n",
			lf, mean, mean/meanPlain)
	}
}

// Scheduler comparison: reproduce one bar group of the paper's Fig. 22
// — the same placed circuit executed under all four communication-qubit
// allocation policies, reporting mean job completion time.
//
// Run with: go run ./examples/scheduler [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"cloudqc"
)

func main() {
	name := "multiplier_n45"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	circ, err := cloudqc.BuildCircuit(name)
	if err != nil {
		log.Fatal(err)
	}
	cl := cloudqc.NewRandomCloud(20, 0.3, 20, 5, 3)
	model := cloudqc.DefaultModel()

	// Place once with CloudQC so every policy schedules the same remote
	// DAG — the figure isolates scheduling quality.
	pl, err := cloudqc.NewPlacer(cloudqc.DefaultPlacerConfig()).Place(cl, circ)
	if err != nil {
		log.Fatal(err)
	}
	dag := cloudqc.BuildRemoteDAG(circ, cl, pl.QubitToQPU, model.Latency)
	fmt.Printf("%s: %d remote gates, critical path %d, EPR success prob %.1f\n\n",
		name, dag.Len(), dag.CriticalPathLen(), model.SuccessProb)

	policies := []cloudqc.Policy{
		cloudqc.PolicyCloudQC(),
		cloudqc.PolicyAverage(),
		cloudqc.PolicyRandom(),
		cloudqc.PolicyGreedy(),
	}
	const reps = 5
	var base float64
	fmt.Printf("%-8s  %-12s  %s\n", "policy", "meanJCT", "relative")
	for _, p := range policies {
		var total float64
		for rep := int64(0); rep < reps; rep++ {
			res, err := cloudqc.Schedule(dag, cl, model, p, rep)
			if err != nil {
				log.Fatal(err)
			}
			total += res.JCT
		}
		mean := total / reps
		if base == 0 {
			base = mean
		}
		fmt.Printf("%-8s  %-12.1f  %.2fx\n", p.Name(), mean, mean/base)
	}
}

// Multi-tenant simulation: a 20-job mixed batch on the paper's default
// cloud, comparing CloudQC against CloudQC-FIFO job ordering — the
// experiment behind Fig. 14.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sort"

	"cloudqc"
)

func main() {
	run := func(label string, mode int) []float64 {
		jobs, err := cloudqc.MixedWorkload().Batch(20, 42)
		if err != nil {
			log.Fatal(err)
		}
		cfg := cloudqc.ClusterConfig{
			Cloud: cloudqc.NewRandomCloud(20, 0.3, 20, 5, 42),
			Seed:  42,
		}
		if mode == 1 {
			cfg.Mode = cloudqc.FIFOMode
		}
		cluster, err := cloudqc.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results, err := cluster.Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		var jcts []float64
		for _, r := range results {
			if !r.Failed {
				jcts = append(jcts, r.JCT)
			}
		}
		sort.Float64s(jcts)
		fmt.Printf("%-14s: %2d jobs, median JCT %8.0f, p90 %8.0f, max %8.0f\n",
			label, len(jcts), jcts[len(jcts)/2], jcts[len(jcts)*9/10], jcts[len(jcts)-1])
		return jcts
	}

	fmt.Println("mixed workload: 20 jobs on a 20-QPU cloud (batch vs FIFO ordering)")
	batch := run("CloudQC", 0)
	fifo := run("CloudQC-FIFO", 1)

	fmt.Println("\ncompletion-time CDF (fraction of jobs finished by t):")
	fmt.Printf("%12s  %8s  %8s\n", "t", "CloudQC", "FIFO")
	probe := batch[len(batch)-1]
	for _, frac := range []float64{0.25, 0.5, 0.75, 1} {
		t := probe * frac
		fmt.Printf("%12.0f  %8.2f  %8.2f\n", t, cdfAt(batch, t), cdfAt(fifo, t))
	}
}

// cdfAt returns the fraction of sorted samples <= x.
func cdfAt(sorted []float64, x float64) float64 {
	n := 0
	for _, v := range sorted {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(sorted))
}

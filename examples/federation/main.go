// Federated multi-cloud controller: one 16-QPU topology's capacity is
// split across 1, 2, and 4 controller shards behind the global
// admission router, and an 8-tenant bursty WFQ stream measures what
// sharding costs. The shared WFQ virtual-clock space keeps weighted
// fairness federation-wide, and affinity routing keeps repeated
// circuit templates on the shard whose plan cache already compiled
// them.
//
// Run with: go run ./examples/federation
package main

import (
	"fmt"
	"log"

	"cloudqc"
)

func main() {
	// One template per tenant, all of comparable gate count: Jain's
	// index over per-tenant mean JCTs then reflects scheduling.
	templates := []string{
		"wstate_n36", "bv_n70", "cc_n64", "ising_n34",
		"qaoa_n32", "qugan_n39", "ising_n66", "knn_n67",
	}

	run := func(shards int, routing cloudqc.RoutingMode) {
		specs := make([]cloudqc.TenantSpec, len(templates))
		for i, name := range templates {
			specs[i] = cloudqc.TenantSpec{
				Tenant:           i,
				Priority:         1,
				Workload:         cloudqc.Workload{Name: name, Circuits: []string{name}},
				Jobs:             4,
				Process:          "bursty",
				MeanInterarrival: 3000,
			}
		}
		jobs, err := cloudqc.MultiTenantJobs(specs, 7)
		if err != nil {
			log.Fatal(err)
		}

		// Split the same physical topology into `shards` connected
		// shard clouds of balanced capacity.
		topo := cloudqc.RandomTopology(16, 0.3, 1)
		clouds, err := cloudqc.PartitionClouds(topo, shards, 20, 5, 0.1, 1)
		if err != nil {
			log.Fatal(err)
		}
		f, err := cloudqc.NewFederation(cloudqc.FederationConfig{
			Shard:      cloudqc.ClusterConfig{Mode: cloudqc.WFQMode, Seed: 7},
			Clouds:     clouds,
			Routing:    routing,
			SpillDepth: 1,
		})
		if err != nil {
			log.Fatal(err)
		}

		for _, j := range jobs {
			if err := f.StepUntil(j.Arrival); err != nil {
				log.Fatal(err)
			}
			if err := f.Submit(j); err != nil {
				log.Fatal(err)
			}
		}
		results, err := f.Drain()
		if err != nil {
			log.Fatal(err)
		}

		slo := cloudqc.AggregateSLO(cloudqc.Outcomes(results))
		pc := f.PlanCacheStats()
		hitRate := 0.0
		if pc.Hits+pc.Misses > 0 {
			hitRate = float64(pc.Hits) / float64(pc.Hits+pc.Misses)
		}
		rs := f.RouterStats()
		fmt.Printf("%d shard(s), %-8s: %2d jobs done, Jain fairness %.3f, plan-cache hit rate %.2f, router %d affine / %d spill / %d cold / %d random\n",
			shards, routing, len(results), slo.Fairness, hitRate,
			rs.AffinityHits, rs.Spills, rs.Cold, rs.Random)
	}

	fmt.Println("8 tenants x 4 jobs (one circuit template each), bursty arrivals, WFQ admission")
	fmt.Println("one 16-QPU topology partitioned into 1 / 2 / 4 federation shards:")
	fmt.Println()
	for _, shards := range []int{1, 2, 4} {
		run(shards, cloudqc.RouteAffinity)
	}
	fmt.Println()
	fmt.Println("routing ablation at 4 shards (affinity above vs random below):")
	run(4, cloudqc.RouteRandom)
}

// Quickstart: place one distributed quantum circuit on a quantum cloud
// and simulate its execution with CloudQC's network scheduler.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudqc"
)

func main() {
	// The paper's default cloud: 20 QPUs in a random topology, each with
	// 20 computing and 5 communication qubits.
	cl := cloudqc.NewRandomCloud(20, 0.3, 20, 5, 1)

	// A 67-qubit quantum KNN circuit — too large for any single QPU, so
	// CloudQC must distribute it.
	circ, err := cloudqc.BuildCircuit("knn_n67")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d qubits, %d two-qubit gates, depth %d\n",
		circ.Name, circ.NumQubits(), circ.TwoQubitGateCount(), circ.Depth())

	// Full pipeline: Algorithm 1/2 placement, remote DAG contraction,
	// Algorithm 3 scheduling with probabilistic EPR generation.
	res, err := cloudqc.PlaceAndSchedule(cl, circ, cloudqc.DefaultModel(), 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("placed across QPUs %v\n", res.Placement.UsedQPUs())
	fmt.Printf("remote gates: %d (of %d two-qubit gates)\n",
		res.RemoteGates, circ.TwoQubitGateCount())
	fmt.Printf("communication cost: %.0f\n", res.CommCost)
	fmt.Printf("job completion time: %.1f CX units\n", res.JCT)
}

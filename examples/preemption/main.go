// Preemptible execution: a long deadline-free job monopolizes the
// cloud, a deadline job arrives behind it, and the deadline-rescue
// policy preempts the incumbent at an EPR-round boundary, runs the
// urgent job, then resumes the victim from its checkpoint — same job
// id, same tenant billing, wait time still counting admission wait
// only. The run is repeated with preemption off to show what rescue
// buys: without it the urgent job queues behind the incumbent and
// blows its deadline.
//
// Run with: go run ./examples/preemption
package main

import (
	"fmt"
	"log"

	"cloudqc"
)

func main() {
	// 8 QPUs x 20 computing qubits: the 127-qubit jobs below need most
	// of the cloud, so two of them cannot run side by side.
	incumbent, err := cloudqc.BuildCircuit("ghz_n127")
	if err != nil {
		log.Fatal(err)
	}
	urgent, err := cloudqc.BuildCircuit("ghz_n127")
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy cloudqc.PreemptPolicy) {
		lc, err := cloudqc.NewLiveController(cloudqc.ClusterConfig{
			Cloud:   cloudqc.NewRandomCloud(8, 0.3, 20, 5, 1),
			Mode:    cloudqc.EDFMode,
			Seed:    7,
			Preempt: policy,
		})
		if err != nil {
			log.Fatal(err)
		}

		// t=0: tenant 0 submits the deadline-free incumbent; it places
		// immediately and holds its reservation.
		if err := lc.Submit(&cloudqc.Job{ID: 0, Circuit: incumbent, Tenant: 0}); err != nil {
			log.Fatal(err)
		}
		if err := lc.StepUntil(10); err != nil {
			log.Fatal(err)
		}
		// t=10: tenant 1's job arrives with a deadline. Under rescue the
		// controller checkpoints the incumbent at the next EPR-round
		// boundary, releases its QPUs, places the urgent job, and
		// re-enqueues the incumbent to resume afterwards.
		deadline := 400.0
		if err := lc.Submit(&cloudqc.Job{
			ID: 1, Circuit: urgent, Tenant: 1, Arrival: 10, Deadline: deadline,
		}); err != nil {
			log.Fatal(err)
		}

		results, err := lc.Drain()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("preempt=%s:\n", policy)
		for _, r := range results {
			met := "-"
			if r.Job.Deadline > 0 {
				if r.Finished <= r.Job.Deadline {
					met = "met"
				} else {
					met = "MISSED"
				}
			}
			fmt.Printf("  job %d (tenant %d): finished %7.1f  wait %5.1f  deadline %s\n",
				r.Job.ID, r.Job.Tenant, r.Finished, r.WaitTime, met)
		}
		ps := lc.PreemptStats()
		fmt.Printf("  preemptions %d, resumes %d, rescued deadlines %d\n\n",
			ps.Preemptions, ps.Resumes, ps.RescuedDeadlines)
	}

	run(cloudqc.PreemptOff)
	run(cloudqc.PreemptRescue)
}

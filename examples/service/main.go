// Streaming job-submission service, in process: a LiveController
// wrapped in the HTTP JSON JobService, driven through an httptest
// server — submit jobs for two tenants, step virtual time by polling,
// read /v1/stats, and drain.
//
// The same flow runs against the standalone daemon:
//
//	go build ./cmd/cloudqcd && ./cloudqcd -addr :8080 -mode wfq
//	curl -s localhost:8080/v1/jobs -d '{"tenant":1,"circuit":"qft_n29"}'
//
// Run with: go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"cloudqc"
)

func main() {
	// A live controller over the paper's default cloud, WFQ admission.
	lc, err := cloudqc.NewLiveController(cloudqc.ClusterConfig{
		Cloud: cloudqc.NewRandomCloud(20, 0.3, 20, 5, 42),
		Mode:  cloudqc.WFQMode,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The service normally paces virtual time off the wall clock
	// (TimeScale CX units per wall second). The clock is injectable, so
	// this demo drives it by hand: each step(d) advances the service's
	// notion of "now", and the next request steps the controller to the
	// matching virtual time — deterministic, no sleeps.
	clock := time.Unix(0, 0)
	step := func(d time.Duration) { clock = clock.Add(d) }
	svc, err := cloudqc.NewJobService(cloudqc.ServiceConfig{
		Controller:  lc,
		TimeScale:   1000, // 1000 CX per (virtual) wall second
		MaxInFlight: 2,
		Now:         func() time.Time { return clock },
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	submit := func(tenant, priority int, circuit string) int {
		body, _ := json.Marshal(map[string]any{
			"tenant": tenant, "priority": priority,
			"circuit": circuit, "deadline_slack": 50,
		})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var jr struct {
			ID      int     `json:"id"`
			Status  string  `json:"status"`
			Arrival float64 `json:"arrival"`
			Error   string  `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			fmt.Printf("tenant %d: rejected %d (%s)\n", tenant, resp.StatusCode, jr.Error)
			return -1
		}
		fmt.Printf("tenant %d: job %d accepted (%s) at virtual t=%.0f CX\n",
			tenant, jr.ID, circuit, jr.Arrival)
		return jr.ID
	}

	// Two tenants submit a small mixed stream; tenant 2 carries twice
	// the weight. With both of tenant 1's jobs still in flight, its
	// third submission trips the in-flight quota: 429 with a retry hint.
	ids := []int{
		submit(1, 1, "qft_n29"),
		submit(1, 1, "qugan_n39"),
		submit(2, 2, "ghz_n127"),
	}
	submit(1, 1, "qft_n29") // quota: rejected 429

	// Step virtual time and poll to completion — every request advances
	// the controller to the injected clock's virtual instant.
	for _, id := range ids {
		for {
			step(time.Second) // +1000 CX of virtual time
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
			if err != nil {
				log.Fatal(err)
			}
			var jr struct {
				Status string  `json:"status"`
				JCT    float64 `json:"jct"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			if jr.Status == "completed" || jr.Status == "failed" {
				fmt.Printf("job %d: %s, JCT %.0f CX\n", id, jr.Status, jr.JCT)
				break
			}
		}
	}

	// Stream aggregates: per-tenant SLO over everything settled so far.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Settled  int `json:"settled"`
		Rejected int `json:"rejected"`
		Online   struct {
			MeanJCT    float64 `json:"MeanJCT"`
			Throughput float64 `json:"Throughput"`
		} `json:"online"`
		SLO struct {
			Attainment *float64 `json:"attainment"`
			PerTenant  []struct {
				Tenant     int      `json:"tenant"`
				Completed  int      `json:"completed"`
				Attainment *float64 `json:"attainment"`
			} `json:"per_tenant"`
		} `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstats: %d settled, %d rejected, mean JCT %.0f CX, throughput %.2f jobs/kCX\n",
		stats.Settled, stats.Rejected, stats.Online.MeanJCT, stats.Online.Throughput)
	for _, t := range stats.SLO.PerTenant {
		att := "-"
		if t.Attainment != nil {
			att = fmt.Sprintf("%.0f%%", *t.Attainment*100)
		}
		fmt.Printf("  tenant %d: %d completed, SLO attainment %s\n", t.Tenant, t.Completed, att)
	}

	// Graceful shutdown: drain the backlog.
	if _, err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained")
}

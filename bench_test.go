package cloudqc

// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark runs one experiment end to end per
// iteration (workload generation, placement, scheduling simulation) and
// prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// both times the pipelines and emits the paper-comparison data recorded
// in EXPERIMENTS.md. Experiments are scaled to bench-friendly sizes; the
// cloudqc CLI runs the full-size versions.
//
// Experiments fan their independent (sweep point × rep) tasks out to the
// exp worker pool, each task seeding its RNG from (seed, point, rep), so
// timings scale with cores while the printed rows stay bit-identical at
// any pool size. -expworkers pins the pool (1 = the sequential baseline):
//
//	go test -bench=BenchmarkFig1 -benchtime=1x -expworkers=1

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"cloudqc/internal/exp"
	"cloudqc/internal/loadgen"
	"cloudqc/internal/place"
	"cloudqc/internal/plan"
	"cloudqc/internal/sched"
	"cloudqc/internal/service"
	"cloudqc/internal/workload"
)

// expWorkers sizes the experiment worker pool for every benchmark.
var expWorkers = flag.Int("expworkers", 0, "experiment workers (0 = all CPUs, 1 = sequential)")

// benchOpts keeps benchmark iterations affordable while preserving the
// paper's cloud setting.
func benchOpts() exp.Options {
	o := exp.Defaults()
	o.Reps = 2
	o.Workers = *expWorkers
	return o
}

// printOnce deduplicates experiment output across benchmark iterations.
var printOnce sync.Map

func emit(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n=== %s ===\n%s", key, text)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table2()
		if len(rows) != 21 {
			b.Fatal("table 2 incomplete")
		}
		emit("Table II (circuit characteristics)", exp.RenderTable2(rows))
	}
}

func BenchmarkTable3(b *testing.B) {
	// The full 20-circuit table is expensive (SA/GA on qft_n160); bench a
	// representative subset covering sparse, star, and dense circuits.
	circuits := []string{"ghz_n127", "bv_n70", "ising_n66", "cat_n130", "knn_n67", "qugan_n71", "adder_n64"}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(benchOpts(), circuits)
		if err != nil {
			b.Fatal(err)
		}
		emit("Table III (remote ops, single-circuit placement, subset)", exp.RenderTable3(rows))
	}
}

func benchOverhead(b *testing.B, fig, name string) {
	b.Helper()
	caps := []int{10, 20, 30, 40, 50}
	for i := 0; i < b.N; i++ {
		series, err := exp.OverheadVsCapacity(benchOpts(), name, caps)
		if err != nil {
			b.Fatal(err)
		}
		emit(fmt.Sprintf("Fig %s (comm overhead vs computing qubits, %s)", fig, name),
			exp.RenderSweep("capacity", series))
	}
}

func BenchmarkFig6OverheadQugan111(b *testing.B)     { benchOverhead(b, "6", "qugan_n111") }
func BenchmarkFig7OverheadQFT160(b *testing.B)       { benchOverhead(b, "7", "qft_n160") }
func BenchmarkFig8OverheadMultiplier75(b *testing.B) { benchOverhead(b, "8", "multiplier_n75") }
func BenchmarkFig9OverheadQV100(b *testing.B)        { benchOverhead(b, "9", "qv_n100") }

func benchJCTComm(b *testing.B, fig, name string, comm []int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := exp.JCTVsCommQubits(benchOpts(), name, comm)
		if err != nil {
			b.Fatal(err)
		}
		emit(fmt.Sprintf("Fig %s (JCT vs communication qubits, %s)", fig, name),
			exp.RenderSweep("comm", series))
	}
}

func BenchmarkFig10JCTCommQugan111(b *testing.B) {
	benchJCTComm(b, "10", "qugan_n111", []int{5, 7, 10})
}
func BenchmarkFig11JCTCommQFT160(b *testing.B) { benchJCTComm(b, "11", "qft_n160", []int{5, 10}) }
func BenchmarkFig12JCTCommMultiplier75(b *testing.B) {
	benchJCTComm(b, "12", "multiplier_n75", []int{5, 7, 10})
}
func BenchmarkFig13JCTCommQV100(b *testing.B) { benchJCTComm(b, "13", "qv_n100", []int{5, 7, 10}) }

func benchMultiTenant(b *testing.B, fig string, w Workload) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := exp.MultiTenantCDF(benchOpts(), w, 2, 10)
		if err != nil {
			b.Fatal(err)
		}
		emit(fmt.Sprintf("Fig %s (multi-tenant JCT CDF, %s workload)", fig, w.Name),
			exp.RenderCDF(series))
	}
}

func BenchmarkFig14MultiTenantMixed(b *testing.B) { benchMultiTenant(b, "14", workload.Mixed()) }
func BenchmarkFig15MultiTenantQFT(b *testing.B)   { benchMultiTenant(b, "15", workload.QFT()) }
func BenchmarkFig16MultiTenantQugan(b *testing.B) { benchMultiTenant(b, "16", workload.Qugan()) }
func BenchmarkFig17MultiTenantArithmetic(b *testing.B) {
	benchMultiTenant(b, "17", workload.Arithmetic())
}

func benchJCTProb(b *testing.B, fig, name string, probs []float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := exp.JCTVsEPRProb(benchOpts(), name, probs)
		if err != nil {
			b.Fatal(err)
		}
		emit(fmt.Sprintf("Fig %s (JCT vs EPR probability, %s)", fig, name),
			exp.RenderSweep("p", series))
	}
}

func BenchmarkFig18JCTProbQugan111(b *testing.B) {
	benchJCTProb(b, "18", "qugan_n111", []float64{0.1, 0.3, 0.5})
}
func BenchmarkFig19JCTProbQFT160(b *testing.B) {
	benchJCTProb(b, "19", "qft_n160", []float64{0.2, 0.5})
}
func BenchmarkFig20JCTProbMultiplier75(b *testing.B) {
	benchJCTProb(b, "20", "multiplier_n75", []float64{0.1, 0.3, 0.5})
}
func BenchmarkFig21JCTProbQV100(b *testing.B) {
	benchJCTProb(b, "21", "qv_n100", []float64{0.1, 0.3, 0.5})
}

func BenchmarkFig22RelativeJCT(b *testing.B) {
	circuits := []string{"knn_n129", "qugan_n111", "vqe_uccsd_n28", "adder_n64", "multiplier_n45"}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig22(benchOpts(), circuits)
		if err != nil {
			b.Fatal(err)
		}
		emit("Fig 22 (relative JCT by scheduling policy, subset)", exp.RenderFig22(rows))
	}
}

// Ablation benchmarks: the design choices DESIGN.md calls out.

func BenchmarkAblationImbalanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.AblationImbalance(benchOpts(), "qugan_n71")
		if err != nil {
			b.Fatal(err)
		}
		emit("Ablation (imbalance factor sweep, qugan_n71; x=-1 is full sweep)",
			exp.RenderSweep("alpha", []exp.SweepSeries{s}))
	}
}

func BenchmarkAblationBatchOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationBatchOrder(benchOpts(), workload.Qugan(), 8)
		if err != nil {
			b.Fatal(err)
		}
		emit("Ablation (batch ordering vs FIFO, Qugan workload)", exp.RenderAblationOrder(rows))
	}
}

func BenchmarkAblationMultipath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.AblationMultipath(benchOpts(), "knn_n67", []int{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		emit("Ablation (k alternative entanglement paths, knn_n67, sparse topology)",
			exp.RenderSweep("k", []exp.SweepSeries{s}))
	}
}

func BenchmarkAblationFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.AblationFidelity(benchOpts(), "knn_n67", nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		emit("Ablation (link fidelity with purification, knn_n67)",
			exp.RenderSweep("fidelity", []exp.SweepSeries{s}))
	}
}

func BenchmarkTeleportation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TeleportComparison(benchOpts(), []string{"qft_n63", "adder_n64", "multiplier_n45"})
		if err != nil {
			b.Fatal(err)
		}
		emit("Extension (cat-entangler vs teleportation, same placement)", exp.RenderTeleport(rows))
	}
}

func BenchmarkIncomingMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.IncomingMode(benchOpts(), workload.Qugan(), 8, []float64{500, 4000})
		if err != nil {
			b.Fatal(err)
		}
		emit("Incoming-job mode (Poisson arrivals, Qugan workload)", exp.RenderIncoming(rows))
	}
}

// benchClusterOnline drives the multi-tenant controller over a sparse
// Poisson job stream with the given loop implementation and reports the
// scheduling rounds it executed. Comparing BenchmarkClusterOnline
// against BenchmarkClusterOnlineLockStep shows the event-driven core
// skipping the empty rounds the lock-step clock burns while active jobs
// stall on local tails and the cloud waits between arrivals.
func benchClusterOnline(b *testing.B, run func(*Cluster, []*Job) ([]*JobResult, error)) {
	b.Helper()
	const seed = 7
	// Chain circuits (GHZ, cat): sparse remote DAGs whose gates sit far
	// apart on long local stretches, so most EPRAttempt slots have no
	// ready remote gate — the regime the lock-step clock handles worst.
	sparse := Workload{Name: "SparseChains", Circuits: []string{"ghz_n127", "cat_n130"}}
	var rounds, events float64
	for i := 0; i < b.N; i++ {
		jobs, err := sparse.PoissonBatch(12, 4000, seed)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		ct, err := NewCluster(ClusterConfig{
			Cloud:  NewRandomCloud(20, 0.3, 20, 5, 1),
			Placer: NewPlacer(pcfg),
			Seed:   seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := run(ct, jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("unexpected failed job")
			}
		}
		rounds += float64(ct.LastRunStats().Rounds)
		events += float64(ct.LastRunStats().Events)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
}

func BenchmarkClusterOnline(b *testing.B) {
	benchClusterOnline(b, (*Cluster).Run)
}

// BenchmarkLiveController times the streaming submit+step hot path: the
// same sparse Poisson stream as BenchmarkClusterOnline, but fed through
// the live controller one job at a time — StepUntil to each arrival,
// Submit, then Drain. The rounds/run and events/run counters are
// deterministic and must match the one-shot Run's (the differential
// guarantee), so CI gates on them alongside the ClusterOnline
// benchmarks.
func BenchmarkLiveController(b *testing.B) {
	const seed = 7
	sparse := Workload{Name: "SparseChains", Circuits: []string{"ghz_n127", "cat_n130"}}
	var rounds, events float64
	for i := 0; i < b.N; i++ {
		jobs, err := sparse.PoissonBatch(12, 4000, seed)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		lc, err := NewLiveController(ClusterConfig{
			Cloud:  NewRandomCloud(20, 0.3, 20, 5, 1),
			Placer: NewPlacer(pcfg),
			Seed:   seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range jobs {
			if err := lc.StepUntil(j.Arrival); err != nil {
				b.Fatal(err)
			}
			if err := lc.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		res, err := lc.Drain()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("unexpected failed job")
			}
		}
		rounds += float64(lc.RunStats().Rounds)
		events += float64(lc.RunStats().Events)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
}

// BenchmarkLiveControllerTraced is BenchmarkLiveController with the
// span recorder attached — the price of observability when it is ON.
// Same stream, same counters (tracing must not perturb the schedule);
// allocs/op rides the benchjson gate so the ring-buffered recorder
// cannot quietly start allocating per round.
func BenchmarkLiveControllerTraced(b *testing.B) {
	const seed = 7
	sparse := Workload{Name: "SparseChains", Circuits: []string{"ghz_n127", "cat_n130"}}
	var rounds, events, traces float64
	for i := 0; i < b.N; i++ {
		jobs, err := sparse.PoissonBatch(12, 4000, seed)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		rec := NewTraceRecorder()
		lc, err := NewLiveController(ClusterConfig{
			Cloud:  NewRandomCloud(20, 0.3, 20, 5, 1),
			Placer: NewPlacer(pcfg),
			Seed:   seed,
			Trace:  rec,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range jobs {
			if err := lc.StepUntil(j.Arrival); err != nil {
				b.Fatal(err)
			}
			if err := lc.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		res, err := lc.Drain()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("unexpected failed job")
			}
			tr := rec.Get(r.Job.ID)
			if tr == nil || !tr.Done {
				b.Fatalf("job %d has no settled trace", r.Job.ID)
			}
			if sum := tr.Attr.Queue + tr.Attr.Compile + tr.Attr.Local + tr.Attr.Network + tr.Attr.Suspended; sum != tr.Attr.JCT {
				b.Fatalf("job %d attribution sum %v != JCT %v", r.Job.ID, sum, tr.Attr.JCT)
			}
		}
		rounds += float64(lc.RunStats().Rounds)
		events += float64(lc.RunStats().Events)
		traces += float64(rec.Len())
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
	b.ReportMetric(traces/float64(b.N), "traces/run")
}

func BenchmarkClusterOnlineLockStep(b *testing.B) {
	benchClusterOnline(b, (*Cluster).RunLockStep)
}

// BenchmarkClusterOnlineWFQ drives the same sparse-chain regime through
// the tenant-aware path: a three-tenant mix (weights 1/2/4, per-tenant
// Poisson arrivals, depth×slack deadlines) admitted by weighted fair
// queueing with the tenant-weighted EPR allocator.
func BenchmarkClusterOnlineWFQ(b *testing.B) {
	const seed = 7
	sparse := Workload{Name: "SparseChains", Circuits: []string{"ghz_n127", "cat_n130"}}
	mix := DefaultTenantMix(sparse, 4, "poisson", 4000)
	var rounds, events float64
	for i := 0; i < b.N; i++ {
		jobs, err := MultiTenantJobs(mix, seed)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		ct, err := NewCluster(ClusterConfig{
			Cloud:  NewRandomCloud(20, 0.3, 20, 5, 1),
			Placer: NewPlacer(pcfg),
			Policy: PolicyTenantWeighted(),
			Mode:   WFQMode,
			Seed:   seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := ct.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("unexpected failed job")
			}
		}
		rounds += float64(ct.LastRunStats().Rounds)
		events += float64(ct.LastRunStats().Events)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
}

// BenchmarkFederation times the federated controller tier end to end:
// a 16-QPU topology partitioned into 4 shard clouds behind the global
// admission router, an 8-tenant bursty WFQ stream (one circuit
// template per tenant) admitted with affinity routing, the shared WFQ
// clock billing all shards into one virtual-clock space. The summed
// per-shard rounds/run and events/run counters are deterministic, so
// CI gates on them alongside the ClusterOnline/LiveController family.
func BenchmarkFederation(b *testing.B) {
	const seed = 7
	templates := []string{
		"wstate_n36", "bv_n70", "cc_n64", "ising_n34",
		"qaoa_n32", "qugan_n39", "ising_n66", "knn_n67",
	}
	mix := make([]TenantSpec, len(templates))
	for t, name := range templates {
		mix[t] = TenantSpec{
			Tenant:           t,
			Priority:         1,
			Workload:         Workload{Name: name, Circuits: []string{name}},
			Jobs:             2,
			Process:          "bursty",
			MeanInterarrival: 3000,
		}
	}
	topo := RandomTopology(16, 0.3, 1)
	var rounds, events float64
	for i := 0; i < b.N; i++ {
		jobs, err := MultiTenantJobs(mix, seed)
		if err != nil {
			b.Fatal(err)
		}
		clouds, err := PartitionClouds(topo, 4, 20, 5, 0.1, 1)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		f, err := NewFederation(FederationConfig{
			Shard: ClusterConfig{
				Placer: NewPlacer(pcfg),
				Mode:   WFQMode,
				Seed:   seed,
			},
			Clouds:     clouds,
			SpillDepth: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range jobs {
			if err := f.StepUntil(j.Arrival); err != nil {
				b.Fatal(err)
			}
			if err := f.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		res, err := f.Drain()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("unexpected failed job")
			}
		}
		rounds += float64(f.RunStats().Rounds)
		events += float64(f.RunStats().Events)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
}

// BenchmarkPreemption drives the preemptible controller end to end: a
// steady low-priority stream of sparse chains with periodic bursts of
// deadline-carrying QFT jobs layered on top, under EDF admission with
// deadline rescue. Bursts land while the chains hold the cloud, so
// every iteration exercises checkpoint, re-enqueue, and resume; the
// rounds/run and events/run counters (and the preemption counters
// themselves) are deterministic, so CI gates on them alongside the
// ClusterOnline family.
func BenchmarkPreemption(b *testing.B) {
	const seed = 7
	mix := []TenantSpec{
		{Tenant: 0, Priority: 1,
			Workload: Workload{Name: "SparseChains", Circuits: []string{"ghz_n127", "cat_n130"}},
			Jobs:     8, Process: "poisson", MeanInterarrival: 3000},
		{Tenant: 1, Priority: 4,
			Workload: Workload{Name: "DeadlineBursts", Circuits: []string{"qft_n63"}},
			Jobs:     6, Process: "bursty", MeanInterarrival: 6000,
			MinSlack: 30, MaxSlack: 60},
	}
	var rounds, events, preempted float64
	for i := 0; i < b.N; i++ {
		jobs, err := MultiTenantJobs(mix, seed)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		ct, err := NewCluster(ClusterConfig{
			Cloud:   NewRandomCloud(20, 0.3, 20, 5, 1),
			Placer:  NewPlacer(pcfg),
			Mode:    EDFMode,
			Seed:    seed,
			Preempt: PreemptRescue,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := ct.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("unexpected failed job")
			}
		}
		if ct.PreemptStats().Preemptions == 0 {
			b.Fatal("preemption never fired: the bench regime lost its contention")
		}
		rounds += float64(ct.LastRunStats().Rounds)
		events += float64(ct.LastRunStats().Events)
		preempted += float64(ct.PreemptStats().Preemptions)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
	b.ReportMetric(preempted/float64(b.N), "preemptions/run")
}

// BenchmarkFaultRecovery drives the fault injector end to end: a
// sparse-chain stream under staggered QPU outages and a dead-link
// window, with checkpoint-rescue and route-around on. Outage windows
// land while the wide chains hold the cloud, so every iteration
// exercises eviction, re-enqueue, resume, and dead-edge rerouting; the
// rounds/run, events/run, and rescue counters are deterministic, so CI
// gates on them alongside the Preemption family.
func BenchmarkFaultRecovery(b *testing.B) {
	const seed = 7
	mix := []TenantSpec{
		{Tenant: 0, Priority: 1,
			Workload: Workload{Name: "SparseChains", Circuits: []string{"ghz_n127", "cat_n130"}},
			Jobs:     8, Process: "poisson", MeanInterarrival: 3000},
		{Tenant: 1, Priority: 2,
			Workload: Workload{Name: "WideQFT", Circuits: []string{"qft_n63"}},
			Jobs:     4, Process: "uniform", MeanInterarrival: 5000},
	}
	// (1,2) is a non-bridge edge of the seed-1 topology: killing it
	// leaves the 1-4-2 detour, so route-around engages instead of
	// exhausting retry budgets (QPU 0 is a leaf — its edge is a bridge).
	plan := &FaultPlan{
		Recovery:    FaultRecoveryRescue,
		RouteAround: true,
		Events: []FaultEvent{
			{Kind: FaultQPUOutage, QPU: 0, From: 500, To: 4500},
			{Kind: FaultQPUOutage, QPU: 3, From: 6000, To: 10000},
			{Kind: FaultQPUOutage, QPU: 5, From: 12000, To: 16000},
			{Kind: FaultLinkDegrade, U: 1, V: 2, Scale: 0, From: 0, To: 40000},
		},
	}
	var rounds, events, rescued float64
	for i := 0; i < b.N; i++ {
		jobs, err := MultiTenantJobs(mix, seed)
		if err != nil {
			b.Fatal(err)
		}
		pcfg := DefaultPlacerConfig()
		pcfg.Seed = seed
		ct, err := NewCluster(ClusterConfig{
			Cloud:  NewRandomCloud(7, 0.3, 20, 5, 1),
			Placer: NewPlacer(pcfg),
			Mode:   WFQMode,
			Seed:   seed,
			Faults: plan,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := ct.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Failed {
				b.Fatal("a rescue leaked a job")
			}
		}
		fs := ct.FaultStats()
		if fs.RescuedOutage == 0 {
			b.Fatal("no eviction rescued: the bench regime lost its contention")
		}
		rounds += float64(ct.LastRunStats().Rounds)
		events += float64(ct.LastRunStats().Events)
		rescued += float64(fs.RescuedOutage)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(events/float64(b.N), "events/run")
	b.ReportMetric(rescued/float64(b.N), "rescued/run")
}

// Allocation-policy micro-benchmarks: the per-round cost of dividing
// the communication-qubit budget across competing gates. sortByPriority
// used to copy the request slice every round; these benches pin the
// round cost so the hot-path fix (and any future regression) shows up
// in the CI bench trajectory.
func benchAllocPolicy(b *testing.B, p sched.Policy) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const nQPU = 20
	base := make([]sched.Request, 0, 120)
	for i := 0; i < 120; i++ {
		a := rng.Intn(nQPU)
		c := rng.Intn(nQPU - 1)
		if c >= a {
			c++
		}
		path := []int{a, c}
		if m := rng.Intn(nQPU); rng.Intn(3) == 0 && m != a && m != c {
			path = []int{a, m, c} // entanglement swap at an intermediate
		}
		tenant := i % 3
		base = append(base, sched.Request{
			Key:          sched.NodeKey{Job: tenant, Node: i},
			Path:         path,
			Priority:     rng.Intn(30),
			Tenant:       tenant,
			TenantWeight: 1 << tenant,
		})
	}
	reqs := make([]sched.Request, len(base))
	budget := make([]int, nQPU)
	arng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each round hands the policy a freshly built, unsorted slice,
		// like the controller does.
		copy(reqs, base)
		for q := range budget {
			budget[q] = 5
		}
		if alloc := p.Allocate(reqs, budget, arng); len(alloc) == 0 {
			b.Fatal("no grants")
		}
	}
}

func BenchmarkAllocPolicyCloudQC(b *testing.B) { benchAllocPolicy(b, sched.CloudQCPolicy{}) }

func BenchmarkAllocPolicyTenantWeighted(b *testing.B) {
	benchAllocPolicy(b, sched.NewTenantWeightedPolicy())
}

// Plan-cache micro-benchmarks: the admit path's compile stage —
// placement + remote-DAG contraction + execution-state setup — cold
// (the full placer pipeline every job pays without the cache) vs
// through a warmed plan cache (what a repeated template pays). CI
// records both and gates their allocs/op; the hit path must stay >= 5x
// faster than the cold path.

func BenchmarkPlanCacheCold(b *testing.B) {
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	circ, err := BuildCircuit("ghz_n127")
	if err != nil {
		b.Fatal(err)
	}
	pcfg := DefaultPlacerConfig()
	pcfg.Seed = 7
	p := NewPlacer(pcfg)
	lat := DefaultModel().Latency
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := p.Place(cl, circ)
		if err != nil {
			b.Fatal(err)
		}
		dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, lat)
		if sched.NewJobState(dag, 0).Done() {
			b.Fatal("empty remote DAG")
		}
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	circ, err := BuildCircuit("ghz_n127")
	if err != nil {
		b.Fatal(err)
	}
	pcfg := DefaultPlacerConfig()
	pcfg.Seed = 7
	p := NewPlacer(pcfg)
	lat := DefaultModel().Latency

	// Warm one entry, exactly as Cluster.admit's miss path does.
	free := cl.FreeSnapshot()
	key := plan.Key{Circuit: Fingerprint(circ), Cloud: cl.Signature(), Free: plan.FreeSignature(free)}
	pl, err := p.Place(cl, circ)
	if err != nil {
		b.Fatal(err)
	}
	dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, lat)
	cache := plan.New(plan.DefaultCapacity)
	cache.Insert(key, free, &plan.Entry{
		Assign:    pl.QubitToQPU,
		CommCost:  CommCost(circ, cl, pl.QubitToQPU),
		RemoteOps: RemoteOps(circ, pl.QubitToQPU),
		DAG:       dag,
		Prio:      dag.Priorities(),
	})
	state := new(sched.JobState) // the admit path reuses pooled states on hits
	scratch := make([]int, 0, cl.NumQPUs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = scratch[:0]
		for q := 0; q < cl.NumQPUs(); q++ {
			scratch = append(scratch, cl.FreeComputing(q))
		}
		k := plan.Key{Circuit: Fingerprint(circ), Cloud: cl.Signature(), Free: plan.FreeSignature(scratch)}
		e, ok := cache.Lookup(k, scratch)
		if !ok {
			b.Fatal("cache miss on warmed entry")
		}
		hit := &place.Placement{Circuit: circ, QubitToQPU: e.Assign}
		state.Reinit(e.DAG, e.Prio, 0)
		if state.Done() || len(hit.QubitToQPU) == 0 {
			b.Fatal("degenerate hit")
		}
	}
}

// Component micro-benchmarks: the pieces the end-to-end numbers are made
// of.

func BenchmarkPlacementCloudQCKnn67(b *testing.B) {
	circ, err := BuildCircuit("knn_n67")
	if err != nil {
		b.Fatal(err)
	}
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	p := NewPlacer(DefaultPlacerConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Place(cl, circ); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteDAGQFT160(b *testing.B) {
	circ, err := BuildCircuit("qft_n160")
	if err != nil {
		b.Fatal(err)
	}
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	pl, err := NewPlacer(DefaultPlacerConfig()).Place(cl, circ)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, DefaultModel().Latency)
		if dag.Len() == 0 {
			b.Fatal("unexpected empty remote DAG")
		}
	}
}

func BenchmarkScheduleKnn67(b *testing.B) {
	circ, err := BuildCircuit("knn_n67")
	if err != nil {
		b.Fatal(err)
	}
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	pl, err := NewPlacer(DefaultPlacerConfig()).Place(cl, circ)
	if err != nil {
		b.Fatal(err)
	}
	dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, DefaultModel().Latency)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(dag, cl, DefaultModel(), PolicyCloudQC(), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadgen proves the service tier under sustained load: a
// real HTTP server (httptest) over a FIFO live controller, hammered by
// the internal/loadgen engine with 100k constant 3-qubit GHZ
// submissions — the plan cache absorbs every compile after the first,
// so the numbers measure the admission path itself. The huge timescale
// makes virtual time effectively free, so the stream settles as fast
// as the daemon can admit it. jobs/run is deterministic (every
// submission must be accepted and settled); jobs/sec is the
// client-observed end-to-end throughput fed into the benchjson
// artifact for the trajectory.
func BenchmarkLoadgen(b *testing.B) {
	const jobs = 100000
	var settled, jps, p50, p95, p99 float64
	for i := 0; i < b.N; i++ {
		lc, err := NewLiveController(ClusterConfig{
			Cloud: NewRandomCloud(20, 0.3, 20, 5, 1),
			Mode:  FIFOMode,
			Seed:  7,
		})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := service.New(service.Config{Controller: lc, TimeScale: 1e7})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		rep, err := loadgen.Run(loadgen.Config{BaseURL: ts.URL, Jobs: jobs, Workers: 8, Tenants: 4})
		if err != nil {
			ts.Close()
			b.Fatal(err)
		}
		ts.Close()
		if rep.Accepted != jobs {
			b.Fatalf("accepted %d of %d", rep.Accepted, jobs)
		}
		if rep.Settled < rep.Accepted {
			b.Fatalf("settled %d < accepted %d", rep.Settled, rep.Accepted)
		}
		if rep.StatusCounts[202] != jobs {
			b.Fatalf("status counts %v: want %d× 202", rep.StatusCounts, jobs)
		}
		settled += float64(rep.Settled)
		jps += rep.JobsPerSec
		p50 += rep.SubmitP50.Seconds() * 1e3
		p95 += rep.SubmitP95.Seconds() * 1e3
		p99 += rep.SubmitP99.Seconds() * 1e3
	}
	b.ReportMetric(settled/float64(b.N), "jobs/run")
	b.ReportMetric(jps/float64(b.N), "jobs/sec")
	// Submit-latency percentiles ride along for the trajectory; they are
	// wall-clock figures, so the CI gate pins only the deterministic
	// jobs/run above.
	b.ReportMetric(p50/float64(b.N), "p50_ms")
	b.ReportMetric(p95/float64(b.N), "p95_ms")
	b.ReportMetric(p99/float64(b.N), "p99_ms")
}

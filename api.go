package cloudqc

import (
	"math/rand"

	"cloudqc/internal/circuit"
	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/epr"
	"cloudqc/internal/fed"
	"cloudqc/internal/graph"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/plan"
	"cloudqc/internal/qasm"
	"cloudqc/internal/qlib"
	"cloudqc/internal/sched"
	"cloudqc/internal/service"
	"cloudqc/internal/simq"
	"cloudqc/internal/trace"
	"cloudqc/internal/workload"
)

// NewRandomCloud builds a quantum cloud of n QPUs over a connected
// random topology (edge probability edgeProb) with the given computing
// and communication qubits per QPU. The paper's default is
// NewRandomCloud(20, 0.3, 20, 5, seed).
func NewRandomCloud(n int, edgeProb float64, computing, comm int, seed int64) *Cloud {
	return cloud.NewRandom(n, edgeProb, computing, comm, seed)
}

// NewCircuit returns an empty named circuit over n qubits; append gates
// with the circuit's Append method and the gate constructors (CX, H, ...).
func NewCircuit(name string, n int) *Circuit { return circuit.New(name, n) }

// Gate constructors re-exported for building circuits by hand.

// H returns a Hadamard gate on q.
func H(q int) Gate { return circuit.H(q) }

// X returns a Pauli-X gate on q.
func X(q int) Gate { return circuit.X(q) }

// RZ returns a Z-rotation by theta on q.
func RZ(q int, theta float64) Gate { return circuit.RZ(q, theta) }

// RY returns a Y-rotation by theta on q.
func RY(q int, theta float64) Gate { return circuit.RY(q, theta) }

// CX returns a CNOT with control c and target t.
func CX(c, t int) Gate { return circuit.CX(c, t) }

// CZ returns a controlled-Z on c and t.
func CZ(c, t int) Gate { return circuit.CZ(c, t) }

// M returns a measurement of q.
func M(q int) Gate { return circuit.M(q) }

// BuildCircuit constructs a benchmark circuit from the QASMBench-style
// generator library by name (e.g. "qft_n160", "qugan_n111").
func BuildCircuit(name string) (*Circuit, error) { return qlib.Build(name) }

// CircuitNames lists every available benchmark circuit.
func CircuitNames() []string { return qlib.Names() }

// ParseQASM parses an OpenQASM 2.0 program (QASMBench subset).
func ParseQASM(name, src string) (*Circuit, error) { return qasm.Parse(name, src) }

// WriteQASM renders a circuit as OpenQASM 2.0 source.
func WriteQASM(c *Circuit) string { return qasm.Write(c) }

// DefaultModel returns Table I latencies with EPR success probability
// 0.3 — the paper's default simulation model.
func DefaultModel() Model { return epr.DefaultModel() }

// DefaultPlacerConfig returns the paper's CloudQC placement parameters.
func DefaultPlacerConfig() PlacerConfig { return place.DefaultConfig() }

// NewPlacer returns the CloudQC placement algorithm (Algorithm 1).
func NewPlacer(cfg PlacerConfig) Placer { return place.NewCloudQC(cfg) }

// NewBFSPlacer returns the CloudQC-BFS variant that grows feasible QPU
// sets by breadth-first search instead of community detection.
func NewBFSPlacer(cfg PlacerConfig) Placer {
	cfg.UseBFS = true
	return place.NewCloudQC(cfg)
}

// NewRandomPlacer returns the random-search placement baseline.
func NewRandomPlacer(seed int64) Placer { return place.NewRandom(seed) }

// NewAnnealerPlacer returns the simulated-annealing baseline
// (Mao et al., INFOCOM 2023).
func NewAnnealerPlacer(seed int64) Placer { return place.NewAnnealer(seed) }

// NewGeneticPlacer returns the genetic-algorithm baseline.
func NewGeneticPlacer(seed int64) Placer { return place.NewGenetic(seed) }

// Scheduling policies of the evaluation (Sec. VI-C).
func PolicyCloudQC() Policy { return sched.CloudQCPolicy{} }

// PolicyGreedy always gives the top-priority gate everything first.
func PolicyGreedy() Policy { return sched.GreedyPolicy{} }

// PolicyAverage splits communication qubits evenly.
func PolicyAverage() Policy { return sched.AveragePolicy{} }

// PolicyRandom hands out pairs to uniformly random ready gates.
func PolicyRandom() Policy { return sched.RandomPolicy{} }

// PolicyTenantWeighted splits each round's communication-qubit budget
// across tenants in proportion to their weights (Job.Priority) before
// falling back to CloudQC's per-gate priority order, bounding
// cross-tenant starvation at the EPR-allocation layer.
func PolicyTenantWeighted() Policy { return sched.NewTenantWeightedPolicy() }

// ParseAdmissionMode maps a mode name — "batch", "fifo", "edf", or
// "wfq" (empty means batch) — to the Cluster admission mode.
func ParseAdmissionMode(s string) (AdmissionMode, error) { return core.ParseMode(s) }

// CommCost is the paper's placement objective Σ D_ij·C_π(i)π(j).
func CommCost(c *Circuit, cl *Cloud, qubitToQPU []int) float64 {
	return place.CommCost(c, cl, qubitToQPU)
}

// RemoteOps counts two-qubit gates crossing QPUs under an assignment
// (the Table III metric).
func RemoteOps(c *Circuit, qubitToQPU []int) int {
	return place.RemoteOps(c, qubitToQPU)
}

// BuildRemoteDAG contracts a placed circuit to its remote DAG (Fig. 3).
func BuildRemoteDAG(c *Circuit, cl *Cloud, qubitToQPU []int, lat Latency) *RemoteDAG {
	return sched.BuildRemoteDAG(c, cl, qubitToQPU, lat)
}

// Schedule simulates one placed job's remote DAG to completion under the
// given policy (Algorithm 3) and returns its completion time statistics.
func Schedule(dag *RemoteDAG, cl *Cloud, m Model, p Policy, seed int64) (ScheduleResult, error) {
	return sched.Run(dag, cl, m, p, rand.New(rand.NewSource(seed)))
}

// PipelineResult is the outcome of the single-job convenience pipeline.
type PipelineResult struct {
	// Placement is the CloudQC placement used.
	Placement *Placement
	// RemoteGates is the remote DAG size it induced.
	RemoteGates int
	// CommCost is Σ D_ij·C_ij for the placement.
	CommCost float64
	// JCT is the simulated job completion time in CX units.
	JCT float64
}

// PlaceAndSchedule runs the full CloudQC pipeline for one circuit:
// placement (Algorithm 1/2), remote DAG construction, and network
// scheduling (Algorithm 3) with the CloudQC policy.
func PlaceAndSchedule(cl *Cloud, c *Circuit, m Model, seed int64) (*PipelineResult, error) {
	cfg := place.DefaultConfig()
	cfg.Model = m
	cfg.Seed = seed
	pl, err := place.NewCloudQC(cfg).Place(cl, c)
	if err != nil {
		return nil, err
	}
	dag := sched.BuildRemoteDAG(c, cl, pl.QubitToQPU, m.Latency)
	res, err := sched.Run(dag, cl, m, sched.CloudQCPolicy{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Placement:   pl,
		RemoteGates: dag.Len(),
		CommCost:    place.CommCost(c, cl, pl.QubitToQPU),
		JCT:         res.JCT,
	}, nil
}

// ScheduleMultipath is Schedule with congestion-aware entanglement
// routing over up to k alternative QPU paths per remote gate.
func ScheduleMultipath(dag *RemoteDAG, cl *Cloud, m Model, p Policy, seed int64, k int) (ScheduleResult, error) {
	return sched.RunMultipath(dag, cl, m, p, rand.New(rand.NewSource(seed)), k)
}

// DefaultFidelityModel returns the fidelity-aware EPR model: Table I
// latencies, success probability 0.3, 0.97 link fidelity, 0.9 threshold.
func DefaultFidelityModel() FidelityModel { return epr.DefaultFidelityModel() }

// ScheduleWithFidelity is Schedule under a link-fidelity constraint:
// remote gates purify their entanglement (BBPSSW rounds) until the
// end-to-end fidelity clears the model's threshold.
func ScheduleWithFidelity(dag *RemoteDAG, cl *Cloud, f FidelityModel, p Policy, seed int64) (ScheduleResult, error) {
	return sched.RunFidelity(dag, cl, f, p, rand.New(rand.NewSource(seed)))
}

// BuildMigratingDAG is BuildRemoteDAG with teleportation: qubits opening
// a burst of same-pair remote gates migrate to the partner QPU (one EPR
// for the move, the burst turns local). Returns the plan and migration
// statistics; pass the result to Schedule like any remote DAG.
func BuildMigratingDAG(c *Circuit, cl *Cloud, qubitToQPU []int, lat Latency) (*RemoteDAG, *MigrationStats) {
	return sched.BuildMigratingDAG(c, cl, qubitToQPU, lat, sched.PlanOptions{})
}

// Simulate executes a small circuit (<= 20 qubits) on a dense
// state-vector simulator, returning the final state and per-qubit
// measurement outcomes (-1 for unmeasured qubits).
func Simulate(c *Circuit, seed int64) (*QuantumState, []int) { return simq.Run(c, seed) }

// NewUtilizationRecorder returns a recorder keeping one sample per
// `every` time units; attach it to ClusterConfig.Recorder.
func NewUtilizationRecorder(every float64) *UtilizationRecorder {
	return metrics.NewRecorder(every)
}

// NewCluster builds the multi-tenant controller. Zero-valued Config
// fields get the paper's defaults (CloudQC placement + CloudQC policy,
// Table I model, batch mode).
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return core.NewController(cfg) }

// NewLiveController builds the incremental (streaming) variant of the
// controller: jobs can be submitted at any virtual time after the run
// starts, the clock advances in steps, and submitting a workload's
// jobs at their arrival times reproduces NewCluster(cfg).Run
// bit-identically. The same ClusterConfig applies.
func NewLiveController(cfg ClusterConfig) (*LiveController, error) {
	return core.NewLiveController(cfg)
}

// NewJobService wraps a LiveController in the HTTP JSON submission
// service: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/stats,
// GET /v1/cluster, with per-tenant token-bucket rate limiting and
// in-flight quotas (429 + Retry-After) and a virtual-time pacer
// mapping wall time onto EPR rounds. The returned service implements
// http.Handler; call its Drain method on shutdown. For a standalone
// daemon, see cmd/cloudqcd.
func NewJobService(cfg ServiceConfig) (*JobService, error) { return service.New(cfg) }

// NewFederation builds the federated controller tier: one shard
// controller per cloud in cfg.Clouds behind a global admission router.
// In WFQ mode all shards bill tenants into one shared virtual-clock
// space, so weighted fairness holds federation-wide; with one cloud
// the federation is bit-identical to NewLiveController. Pass the
// result to NewJobService via ServiceConfig.Federation, or drive it
// directly with Submit / StepUntil / Drain.
func NewFederation(cfg FederationConfig) (*Federation, error) { return fed.New(cfg) }

// WrapLiveController lifts an existing LiveController into a 1-shard
// Federation (same object, federation interface) — the migration path
// for callers moving to the federated API.
func WrapLiveController(lc *LiveController) *Federation { return fed.Wrap(lc) }

// PartitionClouds splits one topology into n connected shard clouds of
// balanced capacity (k-way graph partition, imbalance tolerance e.g.
// 0.1), for federations that shard a single physical cloud rather than
// spanning n separate ones.
func PartitionClouds(topo *Topology, n, computing, comm int, imbalance float64, seed int64) ([]*Cloud, error) {
	return fed.PartitionClouds(topo, n, computing, comm, imbalance, seed)
}

// ParseRoutingMode maps a routing name — "affinity" or "random" (empty
// means affinity) — to the federation admission routing.
func ParseRoutingMode(s string) (RoutingMode, error) { return fed.ParseRouting(s) }

// NewTraceRecorder returns an empty virtual-time span recorder; attach
// it to ClusterConfig.Trace (one controller) or FederationConfig.Trace
// (shared across every shard, so traces survive cross-shard rehomes).
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// NewWFQClock returns a fresh shared WFQ virtual-clock space; hand it
// to several controllers via ClusterConfig.SharedWFQ to extend
// weighted fairness across them (a Federation does this itself).
func NewWFQClock() *WFQClock { return core.NewWFQClock() }

// ShardSeed derives the per-shard controller seed a Federation uses
// from its base seed — exported so external shards can reproduce a
// federation's RNG streams.
func ShardSeed(seed int64, shard int) int64 { return fed.ShardSeed(seed, shard) }

// Intensity is the batch manager's job-ordering metric (Eq. 11) with
// equal weights.
func Intensity(c *Circuit) float64 {
	return core.Intensity(c, core.DefaultBatchWeights())
}

// DefaultPlanCacheSize is the compile-once plan cache's default LRU
// capacity, used when ClusterConfig.PlanCacheSize is zero.
const DefaultPlanCacheSize = plan.DefaultCapacity

// Fingerprint returns a circuit's structural fingerprint — the
// plan-cache identity under which identical templates share compile
// artifacts (placement, remote DAG) regardless of job identity.
func Fingerprint(c *Circuit) CircuitFingerprint { return c.Fingerprint() }

// Workloads returns the paper's four multi-tenant workload suites
// (Mixed, QFT, Qugan, Arithmetic).
func Workloads() []Workload { return workload.All() }

// OnlineJobs samples an online ("incoming jobs") stream from a
// workload: size jobs whose arrival times follow the named process —
// "poisson" (exponential gaps), "uniform" (constant rate), or "bursty"
// (synchronized groups) — at the given mean inter-arrival time in CX
// units. Submit the result to a Cluster to simulate the online setting.
func OnlineJobs(w Workload, process string, size int, meanInterarrival float64, seed int64) ([]*Job, error) {
	return w.Arrivals(process, size, meanInterarrival, seed)
}

// AggregateOnline summarizes an online run's completed-job JCTs and
// wait times, failed-job count, and makespan into throughput and
// percentile statistics.
func AggregateOnline(jcts, waits []float64, failed int, makespan float64) OnlineStats {
	return metrics.AggregateOnline(jcts, waits, failed, makespan)
}

// MultiTenantJobs samples one merged job stream from heterogeneous
// tenant specs: per-tenant circuit pools, arrival processes, weights,
// and deadline distributions (deadline = arrival + circuit depth ×
// slack). Submit the result to a Cluster in EDFMode or WFQMode — or any
// other mode — and summarize with Outcomes + AggregateSLO.
func MultiTenantJobs(specs []TenantSpec, seed int64) ([]*Job, error) {
	return workload.MultiTenant(specs, seed)
}

// DefaultTenantMix builds the three-tenant mix the SLO experiments use
// over one workload: priorities 1, 2, and 4, identical arrival
// processes, and the default deadline slack range.
func DefaultTenantMix(w Workload, perTenant int, process string, meanInterarrival float64) []TenantSpec {
	return workload.DefaultTenantMix(w, perTenant, process, meanInterarrival)
}

// Outcomes converts a run's results into the plain job outcomes
// AggregateSLO consumes.
func Outcomes(results []*JobResult) []JobOutcome { return core.Outcomes(results) }

// AggregateSLO summarizes tenant- and deadline-aware outcomes: SLO
// attainment, Jain's fairness index over per-tenant mean JCTs, and
// per-tenant breakdowns.
func AggregateSLO(outcomes []JobOutcome) SLOStats { return metrics.AggregateSLO(outcomes) }

// MixedWorkload returns the mixed multi-tenant workload of Fig. 14.
func MixedWorkload() Workload { return workload.Mixed() }

// RandomTopology exposes the connected Erdős–Rényi generator used for
// cloud topologies, for callers assembling clouds by hand with NewCloud.
func RandomTopology(n int, p float64, seed int64) *Topology {
	return graph.Random(n, p, seed)
}

// NewCloud builds a cloud over an explicit topology where every QPU has
// the same computing and communication qubit counts.
func NewCloud(topo *Topology, computing, comm int) *Cloud {
	return cloud.New(topo, computing, comm)
}

package main

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args should error with usage")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown command should error")
	}
}

func TestRunHelp(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"help"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "table3") || !strings.Contains(out, "ablation-multipath") {
		t.Fatalf("help output:\n%s", out)
	}
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qft_n160") || !strings.Contains(out, "grover_n8") {
		t.Fatalf("list output missing circuits:\n%s", out)
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "EPR preparation") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestRunTable2(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"table2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qv_n100") || !strings.Contains(out, "15000") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestRunPipelineSmallCircuit(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-circuit", "ising_n34", "-reps", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"placement remote ops", "mean JCT", "CloudQC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOnlineMode(t *testing.T) {
	// The online figure is expensive at defaults; shrink it to a smoke
	// run. Both the subcommand and the -online alias must work.
	args := []string{"-jobs", "3", "-reps", "1", "-interarrivals", "2000", "-process", "uniform"}
	for _, cmd := range []string{"online", "-online"} {
		out, err := capture(t, func() error { return run(append([]string{cmd}, args...)) })
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"online mode", "uniform", "P99JCT", "Mixed", "Arithmetic"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s output missing %q:\n%s", cmd, want, out)
			}
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("500, 2000,8000")
	if err != nil || len(got) != 3 || got[1] != 2000 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", "0", "-5", "100,-1"} {
		if _, err := parseRates(bad); err == nil {
			t.Fatalf("parseRates(%q) should error", bad)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"table1", "-no-such-flag"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

// TestCommandTableCoversHelp: the help text is generated from the
// dispatch table, so every command appears exactly once, the figure
// range is complete, and the serve forwarding note is present.
func TestCommandTableCoversHelp(t *testing.T) {
	cmds := commandTable()
	seen := make(map[string]bool, len(cmds))
	for _, c := range cmds {
		if seen[c.name] {
			t.Fatalf("duplicate command %q in table", c.name)
		}
		seen[c.name] = true
		if c.summary == "" || c.run == nil {
			t.Fatalf("command %q missing summary or handler", c.name)
		}
	}
	for i := 6; i <= 22; i++ {
		if !seen[fmt.Sprintf("fig%d", i)] {
			t.Fatalf("fig%d missing from command table", i)
		}
	}
	for _, want := range []string{"list", "table1", "table2", "table3", "run", "online", "slo",
		"incoming", "teleport", "serve", "ablation-imbalance", "ablation-order",
		"ablation-multipath", "ablation-fidelity"} {
		if !seen[want] {
			t.Fatalf("%q missing from command table", want)
		}
	}
	help := helpText(cmds)
	for name := range seen {
		if !strings.Contains(help, "\n  "+name+" ") {
			t.Fatalf("help text missing command %q:\n%s", name, help)
		}
	}
	if !strings.Contains(help, "cloudqcd") {
		t.Fatalf("help text missing the cloudqcd forwarding note:\n%s", help)
	}
}

// TestRunServeForwards: `cloudqc serve` points at the cloudqcd binary
// instead of failing as an unknown command.
func TestRunServeForwards(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"serve"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cmd/cloudqcd") {
		t.Fatalf("serve output:\n%s", out)
	}
}

func TestRunOnlineModeFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"online", "-jobs", "3", "-reps", "1",
			"-interarrivals", "2000", "-process", "uniform", "-mode", "edf"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "edf admission") {
		t.Fatalf("online -mode edf output:\n%s", out)
	}
	if err := run([]string{"online", "-jobs", "3", "-mode", "lifo"}); err == nil {
		t.Fatal("unknown -mode should error")
	}
}

func TestRunSLOMode(t *testing.T) {
	// Shrink the SLO figure to a smoke run: 3 tenants x 1 job, one rate.
	out, err := capture(t, func() error {
		return run([]string{"slo", "-jobs", "1", "-reps", "1",
			"-interarrivals", "2000", "-process", "uniform"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slo mode", "Attain", "Jain", "WFQ+TW", "EDF", "Mixed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"slo", "-jobs", "0"}); err == nil {
		t.Fatal("non-positive -jobs should error")
	}
}

package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args should error with usage")
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown command should error")
	}
}

func TestRunHelp(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"help"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "table3") || !strings.Contains(out, "ablation-multipath") {
		t.Fatalf("help output:\n%s", out)
	}
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qft_n160") || !strings.Contains(out, "grover_n8") {
		t.Fatalf("list output missing circuits:\n%s", out)
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "EPR preparation") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestRunTable2(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"table2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qv_n100") || !strings.Contains(out, "15000") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestRunPipelineSmallCircuit(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-circuit", "ising_n34", "-reps", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"placement remote ops", "mean JCT", "CloudQC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOnlineMode(t *testing.T) {
	// The online figure is expensive at defaults; shrink it to a smoke
	// run. Both the subcommand and the -online alias must work.
	args := []string{"-jobs", "3", "-reps", "1", "-interarrivals", "2000", "-process", "uniform"}
	for _, cmd := range []string{"online", "-online"} {
		out, err := capture(t, func() error { return run(append([]string{cmd}, args...)) })
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"online mode", "uniform", "P99JCT", "Mixed", "Arithmetic"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s output missing %q:\n%s", cmd, want, out)
			}
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates("500, 2000,8000")
	if err != nil || len(got) != 3 || got[1] != 2000 {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", "0", "-5", "100,-1"} {
		if _, err := parseRates(bad); err == nil {
			t.Fatalf("parseRates(%q) should error", bad)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"table1", "-no-such-flag"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestIdxMapping(t *testing.T) {
	cases := map[string]int{"fig10": 0, "fig11": 1, "fig13": 3, "fig18": 0, "fig21": 3}
	bases := map[string]int{"fig10": 10, "fig11": 10, "fig13": 10, "fig18": 18, "fig21": 18}
	for cmd, want := range cases {
		if got := idx(cmd, bases[cmd]); got != want {
			t.Fatalf("idx(%s, %d) = %d, want %d", cmd, bases[cmd], got, want)
		}
	}
}

func TestRunOnlineModeFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"online", "-jobs", "3", "-reps", "1",
			"-interarrivals", "2000", "-process", "uniform", "-mode", "edf"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "edf admission") {
		t.Fatalf("online -mode edf output:\n%s", out)
	}
	if err := run([]string{"online", "-jobs", "3", "-mode", "lifo"}); err == nil {
		t.Fatal("unknown -mode should error")
	}
}

func TestRunSLOMode(t *testing.T) {
	// Shrink the SLO figure to a smoke run: 3 tenants x 1 job, one rate.
	out, err := capture(t, func() error {
		return run([]string{"slo", "-jobs", "1", "-reps", "1",
			"-interarrivals", "2000", "-process", "uniform"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slo mode", "Attain", "Jain", "WFQ+TW", "EDF", "Mixed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slo output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"slo", "-jobs", "0"}); err == nil {
		t.Fatal("non-positive -jobs should error")
	}
}

// Command cloudqc regenerates the paper's evaluation tables and figures
// and runs one-off placement/scheduling experiments.
//
// Usage:
//
//	cloudqc <experiment> [flags]
//
// Experiments:
//
//	list                     available benchmark circuits
//	table1                   operation latency table
//	table2                   circuit characteristics (paper vs generated)
//	table3                   single-circuit placement remote ops
//	fig6 fig7 fig8 fig9      comm overhead vs computing qubits
//	fig10 fig11 fig12 fig13  JCT vs communication qubits
//	fig14 fig15 fig16 fig17  multi-tenant JCT CDFs
//	fig18 fig19 fig20 fig21  JCT vs EPR probability
//	fig22                    relative JCT by scheduling policy
//	run                      full pipeline for one circuit (-circuit)
//	online                   incoming-job mode: JCT, throughput and
//	                         utilization vs arrival rate across the four
//	                         workloads (-process, -jobs, -interarrivals,
//	                         -mode batch/fifo/edf/wfq); also invocable
//	                         as `cloudqc -online`
//	slo                      tenant- and deadline-aware scheduling:
//	                         three-tenant mixes (weights 1/2/4, deadlines
//	                         from circuit depth × slack) under Batch,
//	                         FIFO, EDF, WFQ, and WFQ with the tenant-
//	                         weighted EPR allocator; reports SLO
//	                         attainment, Jain fairness, and JCTs vs load
//	                         (-process, -jobs per tenant, -interarrivals)
//
// Common flags: -qpus, -edge-prob, -computing, -comm, -epr-prob, -seed,
// -reps, -workers, -circuit, -batches, -batch-size. Online mode adds
// -process (poisson, uniform, bursty), -jobs, -interarrivals (a
// comma-separated sweep of mean inter-arrival times in CX units), and
// -mode (batch, fifo, edf, wfq admission); slo shares them, with -jobs
// counting per tenant. Simulation tasks fan out to -workers goroutines
// (default: all CPUs); results are identical for any worker count, and
// -workers 1 forces sequential execution.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cloudqc/internal/core"
	"cloudqc/internal/exp"
	"cloudqc/internal/qlib"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudqc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cloudqc <experiment> [flags]; try 'cloudqc help'")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		qpus      = fs.Int("qpus", 20, "number of QPUs in the cloud")
		edgeProb  = fs.Float64("edge-prob", 0.3, "random topology edge probability")
		computing = fs.Int("computing", 20, "computing qubits per QPU")
		comm      = fs.Int("comm", 5, "communication qubits per QPU")
		eprProb   = fs.Float64("epr-prob", 0.3, "EPR generation success probability")
		seed      = fs.Int64("seed", 1, "experiment seed")
		reps      = fs.Int("reps", 3, "simulation repetitions to average")
		workers   = fs.Int("workers", 0, "parallel experiment workers (0 = all CPUs, 1 = sequential)")
		circuit   = fs.String("circuit", "knn_n67", "benchmark circuit name")
		batches   = fs.Int("batches", 5, "multi-tenant batches per method")
		batchSize = fs.Int("batch-size", 20, "jobs per batch")
		process   = fs.String("process", "poisson", "online arrival process: poisson, uniform, or bursty")
		jobs      = fs.Int("jobs", 10, "online jobs per run (per tenant for slo)")
		rates     = fs.String("interarrivals", "500,2000,8000", "comma-separated mean inter-arrival times (CX units)")
		mode      = fs.String("mode", "batch", "admission mode: batch, fifo, edf, or wfq")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	o := exp.Options{
		QPUs: *qpus, EdgeProb: *edgeProb, Computing: *computing,
		Comm: *comm, EPRProb: *eprProb, Seed: *seed, Reps: *reps,
		Workers: *workers,
	}

	switch cmd {
	case "help", "-h", "--help":
		fmt.Println("experiments: list table1 table2 table3 fig6..fig22 run online slo incoming teleport")
		fmt.Println("ablations:   ablation-imbalance ablation-order ablation-multipath ablation-fidelity")
		return nil
	case "list":
		fmt.Println(strings.Join(qlib.Names(), "\n"))
		return nil
	case "table1":
		fmt.Print(exp.TableI())
		return nil
	case "table2":
		fmt.Print(exp.RenderTable2(exp.Table2()))
		return nil
	case "table3":
		rows, err := exp.Table3(o, nil)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderTable3(rows))
		return nil
	case "fig6", "fig7", "fig8", "fig9":
		name := exp.OverheadCircuits()[int(cmd[3]-'6')]
		series, err := exp.OverheadVsCapacity(o, name, nil)
		if err != nil {
			return err
		}
		fmt.Printf("communication overhead vs computing qubits: %s\n", name)
		fmt.Print(exp.RenderSweep("capacity", series))
		return nil
	case "fig10", "fig11", "fig12", "fig13":
		name := exp.SchedCircuits()[idx(cmd, 10)]
		series, err := exp.JCTVsCommQubits(o, name, nil)
		if err != nil {
			return err
		}
		fmt.Printf("mean JCT vs communication qubits: %s\n", name)
		fmt.Print(exp.RenderSweep("comm", series))
		return nil
	case "fig14", "fig15", "fig16", "fig17":
		w := workload.All()[idx(cmd, 14)]
		series, err := exp.MultiTenantCDF(o, w, *batches, *batchSize)
		if err != nil {
			return err
		}
		fmt.Printf("multi-tenant JCT CDF: %s workload (%d batches x %d jobs)\n",
			w.Name, *batches, *batchSize)
		fmt.Print(exp.RenderCDF(series))
		printCDFs(series)
		return nil
	case "fig18", "fig19", "fig20", "fig21":
		name := exp.SchedCircuits()[idx(cmd, 18)]
		series, err := exp.JCTVsEPRProb(o, name, nil)
		if err != nil {
			return err
		}
		fmt.Printf("mean JCT vs EPR success probability: %s\n", name)
		fmt.Print(exp.RenderSweep("p", series))
		return nil
	case "fig22":
		rows, err := exp.Fig22(o, nil)
		if err != nil {
			return err
		}
		fmt.Println("relative JCT by scheduling policy (CloudQC = 1.0)")
		fmt.Print(exp.RenderFig22(rows))
		return nil
	case "run":
		return runPipeline(o, *circuit)
	case "ablation-imbalance":
		s, err := exp.AblationImbalance(o, *circuit)
		if err != nil {
			return err
		}
		fmt.Printf("communication cost by imbalance factor (x = -1 is the full Algorithm 1 sweep): %s\n", *circuit)
		fmt.Print(exp.RenderSweep("alpha", []exp.SweepSeries{s}))
		return nil
	case "ablation-order":
		rows, err := exp.AblationBatchOrder(o, workload.Mixed(), *batchSize)
		if err != nil {
			return err
		}
		fmt.Println("batch manager ordering ablation (Mixed workload)")
		fmt.Print(exp.RenderAblationOrder(rows))
		return nil
	case "ablation-multipath":
		s, err := exp.AblationMultipath(o, *circuit, nil)
		if err != nil {
			return err
		}
		fmt.Printf("mean JCT by k alternative entanglement paths (sparse topology): %s\n", *circuit)
		fmt.Print(exp.RenderSweep("k", []exp.SweepSeries{s}))
		return nil
	case "ablation-fidelity":
		s, err := exp.AblationFidelity(o, *circuit, nil, 0)
		if err != nil {
			return err
		}
		fmt.Printf("mean JCT by link fidelity with purification to threshold 0.9: %s\n", *circuit)
		fmt.Print(exp.RenderSweep("fidelity", []exp.SweepSeries{s}))
		return nil
	case "teleport":
		rows, err := exp.TeleportComparison(o, nil)
		if err != nil {
			return err
		}
		fmt.Println("cat-entangler vs teleportation-enabled execution (same placement)")
		fmt.Print(exp.RenderTeleport(rows))
		return nil
	case "incoming":
		rows, err := exp.IncomingMode(o, workload.Mixed(), *batchSize, nil)
		if err != nil {
			return err
		}
		fmt.Println("incoming-job mode: Poisson arrivals, FIFO placement (Mixed workload)")
		fmt.Print(exp.RenderIncoming(rows))
		return nil
	case "online", "-online", "--online":
		if *jobs <= 0 {
			return fmt.Errorf("-jobs must be positive, got %d", *jobs)
		}
		interarrivals, err := parseRates(*rates)
		if err != nil {
			return err
		}
		m, err := core.ParseMode(*mode)
		if err != nil {
			return err
		}
		rows, err := exp.Online(o, *process, *jobs, interarrivals, m)
		if err != nil {
			return err
		}
		fmt.Printf("online mode: %s arrivals, %d jobs per run, %s admission, JCT/throughput/utilization vs arrival rate\n",
			*process, *jobs, *mode)
		if m == core.EDFMode || m == core.WFQMode {
			// Plain online streams carry no deadlines or tenants, so these
			// modes admit like their baselines here; say so rather than
			// letting the heading oversell the figure.
			fmt.Println("note: online streams carry no deadlines/tenants — edf reduces to fifo and wfq to batch; see `cloudqc slo` for the tenant- and deadline-aware sweep")
		}
		fmt.Print(exp.RenderOnline(rows))
		return nil
	case "slo":
		if *jobs <= 0 {
			return fmt.Errorf("-jobs must be positive, got %d", *jobs)
		}
		interarrivals, err := parseRates(*rates)
		if err != nil {
			return err
		}
		rows, err := exp.SLO(o, *process, *jobs, interarrivals)
		if err != nil {
			return err
		}
		fmt.Printf("slo mode: %s arrivals, 3 tenants x %d jobs, attainment/fairness vs arrival rate and scheduler\n",
			*process, *jobs)
		fmt.Print(exp.RenderSLO(rows))
		return nil
	default:
		return fmt.Errorf("unknown experiment %q; try 'cloudqc help'", cmd)
	}
}

// idx maps "figN" to its offset within a four-figure group starting at
// base.
func idx(cmd string, base int) int {
	n := int(cmd[3]-'0')*10 + int(cmd[4]-'0')
	return n - base
}

// parseRates parses the -interarrivals sweep: a comma-separated list of
// positive mean inter-arrival times.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -interarrivals entry %q: %w", field, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive inter-arrival time %v", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-interarrivals is empty")
	}
	return out, nil
}

func printCDFs(series []exp.CDFSeries) {
	for _, s := range series {
		fmt.Printf("\n%s CDF (completion time -> fraction):\n", s.Method)
		step := len(s.Points)/10 + 1
		for i := 0; i < len(s.Points); i += step {
			p := s.Points[i]
			fmt.Printf("  %10.1f  %.2f\n", p.X, p.P)
		}
	}
}

func runPipeline(o exp.Options, name string) error {
	rows, err := exp.Table3(o, []string{name})
	if err != nil {
		return err
	}
	fmt.Printf("placement remote ops for %s:\n", name)
	fmt.Print(exp.RenderTable3(rows))

	series, err := exp.JCTVsCommQubits(o, name, []int{o.Comm})
	if err != nil {
		return err
	}
	var out [][]string
	for _, s := range series {
		out = append(out, []string{s.Method, stats.F(s.Y[0])})
	}
	fmt.Printf("\nmean JCT at %d communication qubits:\n", o.Comm)
	fmt.Print(stats.Table([]string{"Policy", "JCT"}, out))
	return nil
}

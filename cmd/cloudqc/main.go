// Command cloudqc regenerates the paper's evaluation tables and figures
// and runs one-off placement/scheduling experiments.
//
// Usage:
//
//	cloudqc <experiment> [flags]
//
// Run `cloudqc help` for the full experiment catalogue — the help text
// is derived from the same command table that dispatches execution, so
// it cannot drift. Highlights:
//
//	list                     available benchmark circuits
//	table1 table2 table3     the paper's tables
//	fig6..fig22              the paper's figures
//	run                      full pipeline for one circuit (-circuit)
//	online                   incoming-job mode: JCT, throughput and
//	                         utilization vs arrival rate (-process,
//	                         -jobs, -interarrivals, -mode); also
//	                         invocable as `cloudqc -online`
//	slo                      tenant- and deadline-aware scheduling:
//	                         SLO attainment, Jain fairness, JCTs vs load
//	preempt                  preemptible execution: SLO attainment and
//	                         p99 JCT vs load with preemption off,
//	                         deadline-rescue, and priority
//	faults                   fault injection: SLO attainment and p99 JCT
//	                         vs QPU-outage rate with no-recovery,
//	                         checkpoint-rescue, and rescue+route-around
//	federation               federated controller tier: throughput, JCT
//	                         and fairness vs shard count, with the
//	                         affinity-vs-random routing ablation
//	attribution              JCT attribution: queue/network/local/
//	                         suspended time-breakdown vs load per
//	                         admission mode, from virtual-time traces
//	serve                    forwarding note: the HTTP daemon is the
//	                         separate cloudqcd binary (cmd/cloudqcd)
//
// Common flags: -qpus, -edge-prob, -computing, -comm, -epr-prob, -seed,
// -reps, -workers, -circuit, -batches, -batch-size. Online mode adds
// -process (poisson, uniform, bursty), -jobs, -interarrivals (a
// comma-separated sweep of mean inter-arrival times in CX units), and
// -mode (batch, fifo, edf, wfq admission); slo shares them, with -jobs
// counting per tenant. Simulation tasks fan out to -workers goroutines
// (default: all CPUs); results are identical for any worker count, and
// -workers 1 forces sequential execution.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cloudqc/internal/core"
	"cloudqc/internal/exp"
	"cloudqc/internal/qlib"
	"cloudqc/internal/stats"
	"cloudqc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudqc:", err)
		os.Exit(1)
	}
}

// cmdContext carries every parsed flag to the command handlers.
type cmdContext struct {
	o         exp.Options
	circuit   string
	batches   int
	batchSize int
	process   string
	jobs      int
	rates     string
	mode      string
}

// command is one cloudqc subcommand: the single table below both
// renders `cloudqc help` and dispatches execution, so the help text
// cannot drift from what actually runs (it used to be hand-maintained
// and did).
type command struct {
	name    string
	group   string // help section: experiments, ablations, service
	summary string
	run     func(cc *cmdContext) error
}

// commandTable lists every subcommand in help order.
func commandTable() []command {
	cmds := []command{
		{"list", "experiments", "available benchmark circuits", func(cc *cmdContext) error {
			fmt.Println(strings.Join(qlib.Names(), "\n"))
			return nil
		}},
		{"table1", "experiments", "operation latency table", func(cc *cmdContext) error {
			fmt.Print(exp.TableI())
			return nil
		}},
		{"table2", "experiments", "circuit characteristics (paper vs generated)", func(cc *cmdContext) error {
			fmt.Print(exp.RenderTable2(exp.Table2()))
			return nil
		}},
		{"table3", "experiments", "single-circuit placement remote ops", func(cc *cmdContext) error {
			rows, err := exp.Table3(cc.o, nil)
			if err != nil {
				return err
			}
			fmt.Print(exp.RenderTable3(rows))
			return nil
		}},
	}
	for i, name := range exp.OverheadCircuits() {
		name := name
		cmds = append(cmds, command{fmt.Sprintf("fig%d", 6+i), "experiments",
			fmt.Sprintf("comm overhead vs computing qubits (%s)", name),
			func(cc *cmdContext) error {
				series, err := exp.OverheadVsCapacity(cc.o, name, nil)
				if err != nil {
					return err
				}
				fmt.Printf("communication overhead vs computing qubits: %s\n", name)
				fmt.Print(exp.RenderSweep("capacity", series))
				return nil
			}})
	}
	for i, name := range exp.SchedCircuits() {
		name := name
		cmds = append(cmds, command{fmt.Sprintf("fig%d", 10+i), "experiments",
			fmt.Sprintf("JCT vs communication qubits (%s)", name),
			func(cc *cmdContext) error {
				series, err := exp.JCTVsCommQubits(cc.o, name, nil)
				if err != nil {
					return err
				}
				fmt.Printf("mean JCT vs communication qubits: %s\n", name)
				fmt.Print(exp.RenderSweep("comm", series))
				return nil
			}})
	}
	for i, w := range workload.All() {
		w := w
		cmds = append(cmds, command{fmt.Sprintf("fig%d", 14+i), "experiments",
			fmt.Sprintf("multi-tenant JCT CDF (%s workload)", w.Name),
			func(cc *cmdContext) error {
				series, err := exp.MultiTenantCDF(cc.o, w, cc.batches, cc.batchSize)
				if err != nil {
					return err
				}
				fmt.Printf("multi-tenant JCT CDF: %s workload (%d batches x %d jobs)\n",
					w.Name, cc.batches, cc.batchSize)
				fmt.Print(exp.RenderCDF(series))
				printCDFs(series)
				return nil
			}})
	}
	for i, name := range exp.SchedCircuits() {
		name := name
		cmds = append(cmds, command{fmt.Sprintf("fig%d", 18+i), "experiments",
			fmt.Sprintf("JCT vs EPR probability (%s)", name),
			func(cc *cmdContext) error {
				series, err := exp.JCTVsEPRProb(cc.o, name, nil)
				if err != nil {
					return err
				}
				fmt.Printf("mean JCT vs EPR success probability: %s\n", name)
				fmt.Print(exp.RenderSweep("p", series))
				return nil
			}})
	}
	cmds = append(cmds,
		command{"fig22", "experiments", "relative JCT by scheduling policy", func(cc *cmdContext) error {
			rows, err := exp.Fig22(cc.o, nil)
			if err != nil {
				return err
			}
			fmt.Println("relative JCT by scheduling policy (CloudQC = 1.0)")
			fmt.Print(exp.RenderFig22(rows))
			return nil
		}},
		command{"run", "experiments", "full pipeline for one circuit (-circuit)", func(cc *cmdContext) error {
			return runPipeline(cc.o, cc.circuit)
		}},
		command{"teleport", "experiments", "cat-entangler vs teleportation-enabled execution", func(cc *cmdContext) error {
			rows, err := exp.TeleportComparison(cc.o, nil)
			if err != nil {
				return err
			}
			fmt.Println("cat-entangler vs teleportation-enabled execution (same placement)")
			fmt.Print(exp.RenderTeleport(rows))
			return nil
		}},
		command{"incoming", "experiments", "incoming-job mode: Poisson arrivals, FIFO placement", func(cc *cmdContext) error {
			rows, err := exp.IncomingMode(cc.o, workload.Mixed(), cc.batchSize, nil)
			if err != nil {
				return err
			}
			fmt.Println("incoming-job mode: Poisson arrivals, FIFO placement (Mixed workload)")
			fmt.Print(exp.RenderIncoming(rows))
			return nil
		}},
		command{"online", "experiments",
			"incoming-job mode: JCT/throughput/utilization vs arrival rate (-process, -jobs, -interarrivals, -mode)",
			runOnline},
		command{"slo", "experiments",
			"tenant- and deadline-aware scheduling: attainment, fairness, JCTs vs load (-process, -jobs per tenant, -interarrivals)",
			runSLO},
		command{"preempt", "experiments",
			"preemptible execution: SLO attainment and p99 JCT vs load for preemption off/rescue/priority (-process, -jobs per tenant, -interarrivals)",
			runPreempt},
		command{"faults", "experiments",
			"fault injection: SLO attainment and p99 JCT vs QPU-outage rate for no-recovery/rescue/rescue+reroute (-process, -jobs per tenant, -interarrivals as outage counts)",
			runFaults},
		command{"federation", "experiments",
			"federated controller tier: throughput/JCT/fairness vs shard count, affinity vs random routing (-jobs per tenant)",
			runFederation},
		command{"attribution", "experiments",
			"JCT attribution: queue/network/local/suspended time-breakdown vs load per admission mode (-process, -jobs per tenant, -interarrivals)",
			runAttribution},
		command{"ablation-imbalance", "ablations", "communication cost by imbalance factor (-circuit)", func(cc *cmdContext) error {
			s, err := exp.AblationImbalance(cc.o, cc.circuit)
			if err != nil {
				return err
			}
			fmt.Printf("communication cost by imbalance factor (x = -1 is the full Algorithm 1 sweep): %s\n", cc.circuit)
			fmt.Print(exp.RenderSweep("alpha", []exp.SweepSeries{s}))
			return nil
		}},
		command{"ablation-order", "ablations", "batch manager ordering vs FIFO (Mixed workload)", func(cc *cmdContext) error {
			rows, err := exp.AblationBatchOrder(cc.o, workload.Mixed(), cc.batchSize)
			if err != nil {
				return err
			}
			fmt.Println("batch manager ordering ablation (Mixed workload)")
			fmt.Print(exp.RenderAblationOrder(rows))
			return nil
		}},
		command{"ablation-multipath", "ablations", "JCT by k alternative entanglement paths (-circuit)", func(cc *cmdContext) error {
			s, err := exp.AblationMultipath(cc.o, cc.circuit, nil)
			if err != nil {
				return err
			}
			fmt.Printf("mean JCT by k alternative entanglement paths (sparse topology): %s\n", cc.circuit)
			fmt.Print(exp.RenderSweep("k", []exp.SweepSeries{s}))
			return nil
		}},
		command{"ablation-fidelity", "ablations", "JCT by link fidelity with purification (-circuit)", func(cc *cmdContext) error {
			s, err := exp.AblationFidelity(cc.o, cc.circuit, nil, 0)
			if err != nil {
				return err
			}
			fmt.Printf("mean JCT by link fidelity with purification to threshold 0.9: %s\n", cc.circuit)
			fmt.Print(exp.RenderSweep("fidelity", []exp.SweepSeries{s}))
			return nil
		}},
		command{"serve", "service", "streaming job-submission daemon — lives in the separate cloudqcd binary", func(cc *cmdContext) error {
			fmt.Println("the HTTP service daemon is a separate binary: build it with")
			fmt.Println()
			fmt.Println("\tgo build ./cmd/cloudqcd && ./cloudqcd -addr :8080")
			fmt.Println()
			fmt.Println("see `go doc ./cmd/cloudqcd` and the README's \"Running as a service\" section")
			return nil
		}},
	)
	return cmds
}

// helpText renders the command catalogue, grouped like the old
// hand-written help but generated from the dispatch table.
func helpText(cmds []command) string {
	var b strings.Builder
	b.WriteString("usage: cloudqc <experiment> [flags]\n")
	for _, group := range []string{"experiments", "ablations", "service"} {
		fmt.Fprintf(&b, "\n%s:\n", group)
		for _, c := range cmds {
			if c.group == group {
				fmt.Fprintf(&b, "  %-20s %s\n", c.name, c.summary)
			}
		}
	}
	b.WriteString("\ncommon flags: -qpus -edge-prob -computing -comm -epr-prob -seed -reps -workers -circuit -batches -batch-size -process -jobs -interarrivals -mode\n")
	return b.String()
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cloudqc <experiment> [flags]; try 'cloudqc help'")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "-online", "--online":
		cmd = "online" // historical spelling of the online mode
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var (
		qpus      = fs.Int("qpus", 20, "number of QPUs in the cloud")
		edgeProb  = fs.Float64("edge-prob", 0.3, "random topology edge probability")
		computing = fs.Int("computing", 20, "computing qubits per QPU")
		comm      = fs.Int("comm", 5, "communication qubits per QPU")
		eprProb   = fs.Float64("epr-prob", 0.3, "EPR generation success probability")
		seed      = fs.Int64("seed", 1, "experiment seed")
		reps      = fs.Int("reps", 3, "simulation repetitions to average")
		workers   = fs.Int("workers", 0, "parallel experiment workers (0 = all CPUs, 1 = sequential)")
		circuit   = fs.String("circuit", "knn_n67", "benchmark circuit name")
		batches   = fs.Int("batches", 5, "multi-tenant batches per method")
		batchSize = fs.Int("batch-size", 20, "jobs per batch")
		process   = fs.String("process", "poisson", "online arrival process: poisson, uniform, or bursty")
		jobs      = fs.Int("jobs", 10, "online jobs per run (per tenant for slo)")
		rates     = fs.String("interarrivals", "500,2000,8000", "comma-separated mean inter-arrival times (CX units)")
		mode      = fs.String("mode", "batch", "admission mode: batch, fifo, edf, or wfq")
	)
	if err := fs.Parse(rest); err != nil {
		return err
	}
	cc := &cmdContext{
		o: exp.Options{
			QPUs: *qpus, EdgeProb: *edgeProb, Computing: *computing,
			Comm: *comm, EPRProb: *eprProb, Seed: *seed, Reps: *reps,
			Workers: *workers,
		},
		circuit:   *circuit,
		batches:   *batches,
		batchSize: *batchSize,
		process:   *process,
		jobs:      *jobs,
		rates:     *rates,
		mode:      *mode,
	}

	cmds := commandTable()
	if cmd == "help" || cmd == "-h" || cmd == "--help" {
		fmt.Print(helpText(cmds))
		return nil
	}
	for _, c := range cmds {
		if c.name == cmd {
			return c.run(cc)
		}
	}
	return fmt.Errorf("unknown experiment %q; try 'cloudqc help'", cmd)
}

func runOnline(cc *cmdContext) error {
	if cc.jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", cc.jobs)
	}
	interarrivals, err := parseRates(cc.rates)
	if err != nil {
		return err
	}
	m, err := core.ParseMode(cc.mode)
	if err != nil {
		return err
	}
	rows, err := exp.Online(cc.o, cc.process, cc.jobs, interarrivals, m)
	if err != nil {
		return err
	}
	fmt.Printf("online mode: %s arrivals, %d jobs per run, %s admission, JCT/throughput/utilization vs arrival rate\n",
		cc.process, cc.jobs, cc.mode)
	if m == core.EDFMode || m == core.WFQMode {
		// Plain online streams carry no deadlines or tenants, so these
		// modes admit like their baselines here; say so rather than
		// letting the heading oversell the figure.
		fmt.Println("note: online streams carry no deadlines/tenants — edf reduces to fifo and wfq to batch; see `cloudqc slo` for the tenant- and deadline-aware sweep")
	}
	fmt.Print(exp.RenderOnline(rows))
	return nil
}

func runSLO(cc *cmdContext) error {
	if cc.jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", cc.jobs)
	}
	interarrivals, err := parseRates(cc.rates)
	if err != nil {
		return err
	}
	rows, err := exp.SLO(cc.o, cc.process, cc.jobs, interarrivals)
	if err != nil {
		return err
	}
	fmt.Printf("slo mode: %s arrivals, 3 tenants x %d jobs, attainment/fairness vs arrival rate and scheduler\n",
		cc.process, cc.jobs)
	fmt.Print(exp.RenderSLO(rows))
	return nil
}

// runPreempt renders the preemption figure: the three-tenant deadline
// mix under EDF admission with preemption off, deadline-rescue, and
// priority, sweeping arrival rate — attainment and p99 JCT vs load.
func runPreempt(cc *cmdContext) error {
	if cc.jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", cc.jobs)
	}
	interarrivals, err := parseRates(cc.rates)
	if err != nil {
		return err
	}
	rows, err := exp.Preemption(cc.o, cc.process, cc.jobs, interarrivals)
	if err != nil {
		return err
	}
	fmt.Printf("preemption: %s arrivals, 3 tenants x %d jobs, EDF admission, attainment/p99 JCT vs arrival rate for preemption off/rescue/priority\n",
		cc.process, cc.jobs)
	fmt.Print(exp.RenderPreemption(rows))
	return nil
}

// runFaults renders the fault-injection figure: the three-tenant
// deadline mix under EDF admission against a deterministic schedule of
// QPU outages and dead-link windows, sweeping the outage count — SLO
// attainment and p99 JCT vs failure rate for no-recovery,
// checkpoint-rescue, and rescue+route-around.
func runFaults(cc *cmdContext) error {
	if cc.jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", cc.jobs)
	}
	rateList, err := parseRates(cc.rates)
	if err != nil {
		return err
	}
	rates := make([]int, 0, len(rateList))
	for _, r := range rateList {
		n := int(r)
		if float64(n) != r || n < 0 {
			return fmt.Errorf("outage counts must be non-negative integers, got %v", r)
		}
		rates = append(rates, n)
	}
	rows, err := exp.Faults(cc.o, cc.process, cc.jobs, rates)
	if err != nil {
		return err
	}
	fmt.Printf("faults: %s arrivals, 3 tenants x %d jobs, EDF admission, attainment/p99 JCT vs QPU-outage rate for none/rescue/rescue+reroute recovery\n",
		cc.process, cc.jobs)
	fmt.Print(exp.RenderFaults(rows))
	return nil
}

// runAttribution renders the JCT-attribution figure: the three-tenant
// mix traced under FIFO, EDF, and WFQ admission, sweeping arrival rate
// — each cell's completion time split into queue, network-stall,
// local-compute, and suspended fractions that sum to the measured JCT
// exactly (the virtual-time tracer's sum-to-JCT invariant).
func runAttribution(cc *cmdContext) error {
	if cc.jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", cc.jobs)
	}
	interarrivals, err := parseRates(cc.rates)
	if err != nil {
		return err
	}
	rows, err := exp.Attribution(cc.o, cc.process, cc.jobs, interarrivals)
	if err != nil {
		return err
	}
	fmt.Printf("attribution: %s arrivals, 3 tenants x %d jobs, JCT time-breakdown vs arrival rate for fifo/edf/wfq admission\n",
		cc.process, cc.jobs)
	fmt.Print(exp.RenderAttribution(rows))
	return nil
}

// runFederation renders the federated controller tier figure: the
// 8-tenant bursty WFQ mix over one topology's capacity split across 1,
// 2, and 4 controller shards, with the affinity-vs-random routing
// ablation at every multi-shard count.
func runFederation(cc *cmdContext) error {
	if cc.jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", cc.jobs)
	}
	rows, err := exp.Federation(cc.o, []int{1, 2, 4}, cc.jobs, core.WFQMode)
	if err != nil {
		return err
	}
	fmt.Printf("federation: 8 tenants x %d jobs, WFQ admission, one topology split across 1/2/4 shards, affinity vs random routing\n",
		cc.jobs)
	fmt.Print(exp.RenderFederation(rows))
	return nil
}

// parseRates parses the -interarrivals sweep: a comma-separated list of
// positive mean inter-arrival times.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -interarrivals entry %q: %w", field, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive inter-arrival time %v", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-interarrivals is empty")
	}
	return out, nil
}

func printCDFs(series []exp.CDFSeries) {
	for _, s := range series {
		fmt.Printf("\n%s CDF (completion time -> fraction):\n", s.Method)
		step := len(s.Points)/10 + 1
		for i := 0; i < len(s.Points); i += step {
			p := s.Points[i]
			fmt.Printf("  %10.1f  %.2f\n", p.X, p.P)
		}
	}
}

func runPipeline(o exp.Options, name string) error {
	rows, err := exp.Table3(o, []string{name})
	if err != nil {
		return err
	}
	fmt.Printf("placement remote ops for %s:\n", name)
	fmt.Print(exp.RenderTable3(rows))

	series, err := exp.JCTVsCommQubits(o, name, []int{o.Comm})
	if err != nil {
		return err
	}
	var out [][]string
	for _, s := range series {
		out = append(out, []string{s.Method, stats.F(s.Y[0])})
	}
	fmt.Printf("\nmean JCT at %d communication qubits:\n", o.Comm)
	fmt.Print(stats.Table([]string{"Policy", "JCT"}, out))
	return nil
}

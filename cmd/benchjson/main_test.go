package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: cloudqc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz

=== Fig 22 (relative JCT by scheduling policy, subset) ===
Circuit     CloudQC  Greedy
----------------------------
knn_n129    1.00     1.35

BenchmarkClusterOnline-8             	       1	 669246156 ns/op	       130.0 events/run	       107.0 rounds/run
BenchmarkClusterOnlineLockStep-8     	       1	 661902049 ns/op	         0 events/run	       310.0 rounds/run
BenchmarkAllocPolicyCloudQC-8        	   51244	     21424 ns/op
PASS
ok  	cloudqc	2.003s
`

func TestParseBench(t *testing.T) {
	art, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(art.Benchmarks), art.Benchmarks)
	}
	co := art.Benchmarks["ClusterOnline"]
	if co == nil {
		t.Fatalf("ClusterOnline missing (GOMAXPROCS suffix not stripped?): %v", art.Benchmarks)
	}
	if co["ns/op"] != 669246156 || co["rounds/run"] != 107 || co["events/run"] != 130 {
		t.Fatalf("ClusterOnline metrics = %v", co)
	}
	if art.Benchmarks["AllocPolicyCloudQC"]["ns/op"] != 21424 {
		t.Fatalf("AllocPolicyCloudQC = %v", art.Benchmarks["AllocPolicyCloudQC"])
	}
}

func art(ns, rounds float64) *Artifact {
	return &Artifact{Benchmarks: map[string]map[string]float64{
		"ClusterOnline":      {"ns/op": ns, "rounds/run": rounds},
		"AllocPolicyCloudQC": {"ns/op": 20000},
	}}
}

func TestCompareWithinThreshold(t *testing.T) {
	report, n, err := compare(art(100, 100), art(120, 100), "ClusterOnline", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("within-threshold drift flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "ClusterOnline") || !strings.Contains(report, "+20.0%") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	report, n, err := compare(art(100, 100), art(100, 140), "ClusterOnline", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", n, report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestCompareZeroBaselineRegression(t *testing.T) {
	// A metric rising off a zero baseline (a zero-alloc hot path that
	// starts allocating) must gate regardless of the threshold.
	old := &Artifact{Benchmarks: map[string]map[string]float64{
		"PlanCacheHit": {"allocs/op": 0},
	}}
	cur := &Artifact{Benchmarks: map[string]map[string]float64{
		"PlanCacheHit": {"allocs/op": 2},
	}}
	report, n, err := compare(old, cur, "PlanCache", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("zero-baseline increase not flagged:\n%s", report)
	}
	// Zero staying zero is fine.
	_, n, err = compare(old, old, "PlanCache", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("zero-to-zero flagged as regression")
	}
}

func TestCompareMatchScopesGate(t *testing.T) {
	// AllocPolicy doubles, but the gate only covers ClusterOnline.
	cur := art(100, 100)
	cur.Benchmarks["AllocPolicyCloudQC"]["ns/op"] = 40000
	_, n, err := compare(art(100, 100), cur, "ClusterOnline", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("out-of-scope benchmark gated: %d", n)
	}
	// Widening the match catches it.
	_, n, err = compare(art(100, 100), cur, "", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("want 1 regression with empty match, got %d", n)
	}
}

func TestCompareHandlesMissingBaseline(t *testing.T) {
	old := &Artifact{Benchmarks: map[string]map[string]float64{}}
	report, n, err := compare(old, art(100, 100), "", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("new benchmarks must not gate: %d\n%s", n, report)
	}
	if !strings.Contains(report, "no baseline") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestEmitCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := run([]string{"emit", "-o", oldPath}, strings.NewReader(sampleBench), os.Stdout); err != nil {
		t.Fatal(err)
	}
	// A 2x rounds/run regression on ClusterOnline.
	regressed := strings.Replace(sampleBench, "107.0 rounds/run", "214.0 rounds/run", 1)
	if err := run([]string{"emit", "-o", newPath}, strings.NewReader(regressed), os.Stdout); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"compare", "-match", "ClusterOnline", oldPath, newPath}, nil, &out); err == nil {
		t.Fatalf("doubled rounds/run should fail the gate:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"compare", "-match", "ClusterOnline", oldPath, oldPath}, nil, &out); err != nil {
		t.Fatalf("identical artifacts should pass: %v\n%s", err, out.String())
	}
}

func TestEmitRejectsEmptyInput(t *testing.T) {
	if err := run([]string{"emit"}, strings.NewReader("no benchmarks here\n"), os.Stdout); err == nil {
		t.Fatal("empty bench output should error")
	}
}

func TestCompareMetricGateScopesUnits(t *testing.T) {
	// ns/op regresses 3x but only rounds/run gates: report-only.
	gate := gateSet("rounds/run,events/run")
	report, n, err := compare(art(100, 100), art(300, 100), "ClusterOnline", 0.25, gate)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("report-only ns/op regression gated: %d\n%s", n, report)
	}
	if !strings.Contains(report, "report-only") {
		t.Fatalf("report should mark the non-gated regression:\n%s", report)
	}
	// A gated metric still fails.
	_, n, err = compare(art(100, 100), art(100, 200), "ClusterOnline", 0.25, gate)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("gated rounds/run regression missed: %d", n)
	}
	if gateSet("") != nil {
		t.Fatal("empty gate list should mean gate-on-everything (nil)")
	}
}

func TestCompareListsRemovedBenchmarks(t *testing.T) {
	cur := &Artifact{Benchmarks: map[string]map[string]float64{
		"ClusterOnlineRenamed": {"ns/op": 100, "rounds/run": 100},
	}}
	report, n, err := compare(art(100, 100), cur, "ClusterOnline", 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("removed benchmark must not gate: %d\n%s", n, report)
	}
	if !strings.Contains(report, "MISSING") || !strings.Contains(report, "ClusterOnline ") {
		t.Fatalf("removed baseline benchmark not surfaced:\n%s", report)
	}
}

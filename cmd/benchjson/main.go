// Command benchjson turns `go test -bench` output into a JSON artifact
// and compares two such artifacts for performance regressions. It is
// the engine of CI's bench job: every PR emits a BENCH_<sha>.json
// artifact, and the ClusterOnline, LiveController, and PlanCache
// benchmarks are compared against the previous main-branch artifact,
// failing the job on >25% regressions of the gated metrics — CI gates
// on the deterministic scheduling-round counts (rounds/run, events/run)
// and, with -benchmem, on allocs/op (deterministic at a fixed
// -benchtime for deterministic code), while wall time (ns/op) is
// reported for the trajectory without failing on it, since
// single-iteration timings on shared runners are noisy.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson emit -o BENCH_abc.json
//	benchjson compare -threshold 0.25 -match 'ClusterOnline|PlanCache' \
//	  -metrics rounds/run,events/run,allocs/op old.json new.json
//
// emit reads benchmark output on stdin and writes JSON mapping each
// benchmark name (Benchmark prefix and -GOMAXPROCS suffix stripped) to
// its metrics: ns/op plus -benchmem's B/op and allocs/op and any custom
// b.ReportMetric units. compare exits nonzero when any metric of any
// benchmark matching -match regressed by more than -threshold
// (fractional; 0.25 = 25%); a metric rising off a zero baseline (e.g. a
// zero-alloc hot path starting to allocate) is always a regression.
// Metrics where smaller is better are assumed throughout — true for
// ns/op, B/op, allocs/op, rounds/run, and events/run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Artifact is the persisted benchmark snapshot.
type Artifact struct {
	// Benchmarks maps benchmark name to metric unit to value.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchjson emit [-o FILE] | benchjson compare [-threshold F] [-match RE] OLD NEW")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "emit":
		fs := flag.NewFlagSet("emit", flag.ContinueOnError)
		out := fs.String("o", "", "output file (default stdout)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		art, err := parseBench(stdin)
		if err != nil {
			return err
		}
		if len(art.Benchmarks) == 0 {
			return fmt.Errorf("no benchmark lines found on stdin")
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out == "" {
			_, err = stdout.Write(data)
			return err
		}
		return os.WriteFile(*out, data, 0o644)
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ContinueOnError)
		threshold := fs.Float64("threshold", 0.25, "fractional regression that fails the comparison")
		match := fs.String("match", "", "regexp selecting benchmark names to gate on (default: all)")
		gate := fs.String("metrics", "", "comma-separated metric units that gate (default: all); others are report-only")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 2 {
			return fmt.Errorf("compare wants OLD and NEW artifact paths, got %d args", fs.NArg())
		}
		old, err := loadArtifact(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := loadArtifact(fs.Arg(1))
		if err != nil {
			return err
		}
		report, regressions, err := compare(old, cur, *match, *threshold, gateSet(*gate))
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, report)
		if regressions > 0 {
			return fmt.Errorf("%d metric(s) regressed more than %.0f%%", regressions, *threshold*100)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want emit or compare)", cmd)
	}
}

// benchLine matches one `go test -bench` result line: name, iteration
// count, then whitespace-separated "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(.+)$`)

// parseBench extracts benchmark metrics from `go test -bench` output.
// Non-benchmark lines (experiment tables, goos/PASS/ok trailers) are
// ignored.
func parseBench(r io.Reader) (*Artifact, error) {
	art := &Artifact{Benchmarks: make(map[string]map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			continue // not a metric-pair tail; some other line that happened to match
		}
		metrics := make(map[string]float64, len(fields)/2)
		ok := true
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			metrics[fields[i+1]] = v
		}
		if !ok || len(metrics) == 0 {
			continue
		}
		art.Benchmarks[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return art, nil
}

func loadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &art, nil
}

// gateSet parses compare's -metrics flag: nil (gate on everything) for
// the empty string, else the set of metric units allowed to gate.
func gateSet(s string) map[string]bool {
	if s == "" {
		return nil
	}
	set := make(map[string]bool)
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			set[u] = true
		}
	}
	return set
}

// compare reports metric deltas for benchmarks whose name matches the
// pattern, counting how many exceeded the regression threshold.
// Benchmarks present on only one side are listed loudly but never
// gate: a new benchmark has no baseline, and failing on a removed one
// would hard-block legitimate renames (the baseline self-corrects on
// the next main push) — the MISSING line is the signal that the gate's
// coverage changed. When gate is non-nil, only units in it gate — the
// rest are report-only (CI gates on the deterministic rounds/run and
// events/run counters; single-iteration ns/op across heterogeneous
// shared runners is too noisy to fail a PR on and is reported for the
// trajectory only).
func compare(old, cur *Artifact, pattern string, threshold float64, gate map[string]bool) (string, int, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return "", 0, fmt.Errorf("bad -match pattern: %w", err)
	}
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var removed []string
	for name := range old.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok && re.MatchString(name) {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	var b strings.Builder
	regressions := 0
	for _, name := range names {
		prev, ok := old.Benchmarks[name]
		if !ok {
			fmt.Fprintf(&b, "%-40s new benchmark, no baseline\n", name)
			continue
		}
		units := make([]string, 0, len(cur.Benchmarks[name]))
		for u := range cur.Benchmarks[name] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			now := cur.Benchmarks[name][u]
			was, ok := prev[u]
			if !ok {
				fmt.Fprintf(&b, "%-40s %-12s %14.4g  (no baseline)\n", name, u, now)
				continue
			}
			delta := 0.0
			if was != 0 {
				delta = (now - was) / was
			} else if now != 0 {
				// Off a zero baseline any increase is infinite-percent: a
				// zero-alloc hot path that starts allocating must gate no
				// matter the threshold.
				delta = math.Inf(1)
			}
			verdict := "ok"
			switch {
			case delta > threshold && (gate == nil || gate[u]):
				verdict = "REGRESSION"
				regressions++
			case delta > threshold:
				verdict = "regressed (report-only metric)"
			}
			fmt.Fprintf(&b, "%-40s %-12s %14.4g -> %-14.4g %+7.1f%%  %s\n",
				name, u, was, now, delta*100, verdict)
		}
	}
	for _, name := range removed {
		fmt.Fprintf(&b, "%-40s MISSING from new artifact — renamed or removed? The regression gate no longer covers it.\n", name)
	}
	if len(names) == 0 && len(removed) == 0 {
		fmt.Fprintf(&b, "no benchmarks matched %q\n", pattern)
	}
	return b.String(), regressions, nil
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cloudqc/internal/core"
	"cloudqc/internal/service"
)

func TestBuildBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "nope"},
		{"-epr-prob", "0"}, // Model.Validate rejects SuccessProb outside (0, 1]
		{"-epr-prob", "2"}, // ditto
		{"-timescale", "-5"},
		{"-unknown-flag"},
		{"-shards", "0"},
		{"-routing", "nope"},
	}
	for _, args := range cases {
		if _, err := build(args); err == nil {
			t.Fatalf("build(%v) should error", args)
		}
	}
}

// TestDaemonFlagsReachService wires the daemon's flags through an
// httptest round trip: a 1-job quota rejects the second submission and
// the cluster view reflects the -qpus flag.
func TestDaemonFlagsReachService(t *testing.T) {
	d, err := build([]string{"-addr", ":0", "-qpus", "8", "-quota", "1", "-mode", "wfq"})
	if err != nil {
		t.Fatal(err)
	}
	if d.addr != ":0" {
		t.Fatalf("addr = %q", d.addr)
	}
	ts := httptest.NewServer(d.svc)
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}
	code, body := post(`{"tenant": 3, "circuit": "qft_n29"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	code, body = post(`{"tenant": 3, "circuit": "qft_n29"}`)
	if code != http.StatusTooManyRequests || !strings.Contains(body, "quota") {
		t.Fatalf("over-quota submit: %d %s, want 429 mentioning quota", code, body)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr service.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.QPUs) != 8 {
		t.Fatalf("cluster has %d QPUs, want 8 (flag -qpus)", len(cr.QPUs))
	}
}

// TestDaemonShardsFlag boots a 3-shard daemon and checks the federated
// wire views: /v1/stats names the routing and breaks stats down per
// shard; /v1/cluster concatenates every shard's QPUs.
func TestDaemonShardsFlag(t *testing.T) {
	d, err := build([]string{"-addr", ":0", "-qpus", "6", "-shards", "3", "-routing", "affinity", "-spill", "2", "-mode", "wfq"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.svc)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"tenant": 1, "circuit": "qft_n29"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats service.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fw := stats.Federation
	if fw.Shards != 3 || fw.Routing != "affinity" || len(fw.PerShard) != 3 {
		t.Fatalf("federation view = %+v, want 3 affinity shards", fw)
	}
	if routed := fw.Router.AffinityHits + fw.Router.Spills + fw.Router.Cold; routed != 3 {
		t.Fatalf("router counters %+v account for %d jobs, want 3", fw.Router, routed)
	}

	resp, err = http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cr service.ClusterResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Shards) != 3 || len(cr.QPUs) != 18 {
		t.Fatalf("cluster has %d shards and %d QPUs, want 3 and 18 (flags -shards, -qpus)",
			len(cr.Shards), len(cr.QPUs))
	}
}

func TestPrintSummary(t *testing.T) {
	c := core.Job{ID: 0, Tenant: 1, Deadline: 100}
	results := []*core.JobResult{
		{Job: &c, JCT: 80, Finished: 80, WaitTime: 5},
		{Job: &core.Job{ID: 1, Tenant: 2}, Failed: true},
	}
	var buf bytes.Buffer
	printSummary(&buf, results)
	out := buf.String()
	for _, want := range []string{"drained 2 jobs (1 failed)", "tenant 1", "attainment 100%", "tenant 2", "attainment -"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

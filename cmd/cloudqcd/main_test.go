package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cloudqc/internal/core"
	"cloudqc/internal/service"
)

func TestBuildBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "nope"},
		{"-epr-prob", "0"}, // Model.Validate rejects SuccessProb outside (0, 1]
		{"-epr-prob", "2"}, // ditto
		{"-timescale", "-5"},
		{"-unknown-flag"},
	}
	for _, args := range cases {
		if _, _, err := build(args); err == nil {
			t.Fatalf("build(%v) should error", args)
		}
	}
}

// TestDaemonFlagsReachService wires the daemon's flags through an
// httptest round trip: a 1-job quota rejects the second submission and
// the cluster view reflects the -qpus flag.
func TestDaemonFlagsReachService(t *testing.T) {
	srv, addr, err := build([]string{"-addr", ":0", "-qpus", "8", "-quota", "1", "-mode", "wfq"})
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":0" {
		t.Fatalf("addr = %q", addr)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}
	code, body := post(`{"tenant": 3, "circuit": "qft_n29"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	code, body = post(`{"tenant": 3, "circuit": "qft_n29"}`)
	if code != http.StatusTooManyRequests || !strings.Contains(body, "quota") {
		t.Fatalf("over-quota submit: %d %s, want 429 mentioning quota", code, body)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr service.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.QPUs) != 8 {
		t.Fatalf("cluster has %d QPUs, want 8 (flag -qpus)", len(cr.QPUs))
	}
}

func TestPrintSummary(t *testing.T) {
	c := core.Job{ID: 0, Tenant: 1, Deadline: 100}
	results := []*core.JobResult{
		{Job: &c, JCT: 80, Finished: 80, WaitTime: 5},
		{Job: &core.Job{ID: 1, Tenant: 2}, Failed: true},
	}
	var buf bytes.Buffer
	printSummary(&buf, results)
	out := buf.String()
	for _, want := range []string{"drained 2 jobs (1 failed)", "tenant 1", "attainment 100%", "tenant 2", "attainment -"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

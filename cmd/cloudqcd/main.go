// Command cloudqcd is the CloudQC service daemon: an always-on HTTP
// admission front over the live multi-tenant controller. Tenants
// submit circuits (qlib benchmark names or inline OpenQASM 2.0) to
// POST /v1/jobs at any time; a virtual-time pacer maps the wall clock
// onto EPR-attempt rounds, per-tenant token buckets and in-flight
// quotas answer overload with 429 + Retry-After, and SIGINT/SIGTERM
// drains the backlog before exiting with a final stream summary.
//
// Usage:
//
//	cloudqcd [flags]
//
//	-addr        listen address (default :8080)
//	-qpus, -edge-prob, -computing, -comm
//	             cloud shape (defaults: the paper's 20 QPUs, p=0.3,
//	             20 computing + 5 communication qubits each)
//	-epr-prob    EPR generation success probability (default 0.3)
//	-seed        controller seed
//	-mode        admission mode: batch, fifo, edf, or wfq
//	-preempt     preemption policy at EPR-round boundaries: off (the
//	             default; placements are final), rescue (a queued job
//	             with a live deadline may checkpoint-and-displace
//	             running jobs with strictly later deadlines), or
//	             priority (displace strictly lower-weight jobs);
//	             preempted jobs resume from their checkpoint under
//	             their original id, and GET /v1/stats reports
//	             preemption/resume/rescued-deadline counters
//	-tenant-weighted
//	             split each EPR round's budget across tenants by weight
//	-shards      federation shard count (default 1): N controller
//	             shards, each over its own copy of the cloud shape,
//	             behind one admission router; in WFQ mode tenants are
//	             billed into one shared virtual-clock space, and 1
//	             behaves bit-identically to the unfederated daemon
//	-routing     federation admission routing: affinity (plan-cache
//	             locality with load spillover, the default) or random
//	             (the ablation arm)
//	-spill       affinity spillover backlog slack: spill when the
//	             affinity shard runs at least this many jobs deeper
//	             than the least-loaded shard (1 = spill whenever
//	             deeper, 0 = default 4, negative disables)
//	-timescale   virtual CX units per wall second (default 1000)
//	-rate        per-tenant submissions/second (0 disables limiting)
//	-burst       per-tenant burst capacity (default ceil(rate), min 1)
//	-quota       per-tenant max in-flight jobs (0 = unlimited)
//	-plancache   compile-once plan cache LRU capacity (0 = default 256,
//	             negative disables caching; GET /v1/stats reports
//	             hit/miss counters, merged across shards)
//	-faults      JSON fault plan path: a deterministic virtual-time
//	             schedule of QPU outages, link degradations, and shard
//	             drains, plus recovery knobs (checkpoint-rescue vs fail,
//	             retry budget, dead-edge route-around); shard drains
//	             need -shards > 1. Faults can also be injected live on
//	             POST /v1/faults; GET /v1/stats and /metrics report
//	             injection and rescue counters (empty disables)
//	-wal         write-ahead log path: every accepted submission is
//	             fsynced before admission, boot replays the log so a
//	             restart recovers in-flight jobs bit-identically, and a
//	             clean drain truncates it (empty disables durability)
//	-degrade     backlog watermark at which admission degrades to FIFO
//	             (0 = never)
//	-shed        backlog watermark at which submissions are shed with
//	             503 + Retry-After (0 = never; must be ≥ -degrade)
//	-trace       record deterministic virtual-time execution spans for
//	             every job (queue wait, admission decision, compiles,
//	             EPR rounds, suspensions, rehomes) and serve them on
//	             GET /v1/jobs/{id}/trace with a JCT attribution whose
//	             phases sum to the JCT exactly; per-tenant aggregates
//	             land in /v1/stats and /metrics. Off by default: the
//	             disabled path costs nothing on the scheduling hot loop
//	-pprof       net/http/pprof listen address (e.g. localhost:6060) on
//	             a separate private mux — never exposed on -addr (empty
//	             disables profiling)
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events,
// GET /v1/jobs/{id}/trace, GET /v1/events, POST /v1/faults,
// GET /v1/stats, GET /v1/cluster, GET /metrics — see docs/API.md for
// the wire format
// and docs/OPERATIONS.md for the operator guide (recovery semantics,
// watermarks, metrics reference, profiling runbook).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudqc/internal/cloud"
	"cloudqc/internal/core"
	"cloudqc/internal/epr"
	"cloudqc/internal/fault"
	"cloudqc/internal/fed"
	"cloudqc/internal/metrics"
	"cloudqc/internal/place"
	"cloudqc/internal/sched"
	"cloudqc/internal/service"
	"cloudqc/internal/trace"
	"cloudqc/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cloudqcd:", err)
		os.Exit(1)
	}
}

// daemon is a built-but-not-yet-listening cloudqcd: the service, its
// write-ahead log (nil without -wal), the listen address, and how many
// jobs boot-time recovery replayed.
type daemon struct {
	svc       *service.Server
	wlog      *wal.Log
	addr      string
	pprofAddr string
	recovered int
}

// build assembles the service from CLI flags — including opening the
// WAL and replaying any recovered records; split from run so tests can
// drive the handler without binding a socket.
func build(args []string) (*daemon, error) {
	fs := flag.NewFlagSet("cloudqcd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		qpus       = fs.Int("qpus", 20, "number of QPUs in the cloud")
		edgeProb   = fs.Float64("edge-prob", 0.3, "random topology edge probability")
		computing  = fs.Int("computing", 20, "computing qubits per QPU")
		comm       = fs.Int("comm", 5, "communication qubits per QPU")
		eprProb    = fs.Float64("epr-prob", 0.3, "EPR generation success probability")
		seed       = fs.Int64("seed", 1, "controller seed")
		mode       = fs.String("mode", "fifo", "admission mode: batch, fifo, edf, or wfq")
		preempt    = fs.String("preempt", "off", "preemption policy: off, rescue, or priority")
		weighted   = fs.Bool("tenant-weighted", false, "tenant-weighted EPR allocation policy")
		shards     = fs.Int("shards", 1, "federation shard count (1 = single controller)")
		routing    = fs.String("routing", "affinity", "federation routing: affinity or random")
		spill      = fs.Int("spill", 0, "affinity spillover backlog slack (0 = default, negative disables)")
		timescale  = fs.Float64("timescale", 1000, "virtual CX units per wall second")
		rate       = fs.Float64("rate", 0, "per-tenant submissions per second (0 = unlimited)")
		burst      = fs.Int("burst", 0, "per-tenant burst capacity (default ceil(rate))")
		quota      = fs.Int("quota", 0, "per-tenant max in-flight jobs (0 = unlimited)")
		planCache  = fs.Int("plancache", 0, "plan-cache LRU capacity (0 = default, negative disables)")
		faultsPath = fs.String("faults", "", "JSON fault plan path (empty disables fault injection)")
		walPath    = fs.String("wal", "", "write-ahead log path (empty disables durability)")
		degrade    = fs.Int("degrade", 0, "backlog watermark that degrades admission to FIFO (0 = never)")
		shedAt     = fs.Int("shed", 0, "backlog watermark that sheds submissions with 503 (0 = never)")
		traceOn    = fs.Bool("trace", false, "record virtual-time execution spans and serve /v1/jobs/{id}/trace")
		pprofAddr  = fs.String("pprof", "", "net/http/pprof listen address on a private mux (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	m, err := core.ParseMode(*mode)
	if err != nil {
		return nil, err
	}
	pp, err := core.ParsePreempt(*preempt)
	if err != nil {
		return nil, err
	}
	rt, err := fed.ParseRouting(*routing)
	if err != nil {
		return nil, err
	}
	if *shards < 1 {
		return nil, fmt.Errorf("-shards %d: need at least 1", *shards)
	}
	if *shedAt > 0 && *degrade > 0 && *shedAt < *degrade {
		return nil, fmt.Errorf("-shed %d below -degrade %d: shedding must be the harder watermark", *shedAt, *degrade)
	}
	model := epr.DefaultModel()
	model.SuccessProb = *eprProb
	pCfg := place.DefaultConfig()
	pCfg.Seed = *seed
	cfg := core.Config{
		Placer:  place.NewCloudQC(pCfg),
		Model:   model,
		Mode:    m,
		Seed:    *seed,
		Preempt: pp,
	}
	if *weighted {
		cfg.Policy = sched.NewTenantWeightedPolicy()
	}
	// Each shard gets its own copy of the cloud shape (clouds carry
	// mutable reservations); one shard is bit-identical to the
	// unfederated daemon.
	clouds := make([]*cloud.Cloud, *shards)
	for i := range clouds {
		clouds[i] = cloud.NewRandom(*qpus, *edgeProb, *computing, *comm, *seed)
	}
	fedCfg := fed.Config{
		Shard:      cfg,
		Clouds:     clouds,
		Routing:    rt,
		SpillDepth: *spill,
	}
	if *faultsPath != "" {
		plan, err := fault.Load(*faultsPath)
		if err != nil {
			return nil, err
		}
		fedCfg.Faults = plan
	}
	if *traceOn {
		// One shared recorder across every shard: traces follow jobs
		// through cross-shard rehomes, and WAL replay rebuilds them
		// bit-identically by re-walking the same operation stream.
		fedCfg.Trace = trace.New()
	}
	f, err := fed.New(fedCfg)
	if err != nil {
		return nil, err
	}
	var (
		wlog *wal.Log
		recs []wal.Record
	)
	if *walPath != "" {
		if wlog, recs, err = wal.Open(*walPath); err != nil {
			return nil, err
		}
	}
	srv, err := service.New(service.Config{
		Federation:     f,
		TimeScale:      *timescale,
		Rate:           *rate,
		Burst:          *burst,
		MaxInFlight:    *quota,
		PlanCacheSize:  *planCache,
		WAL:            wlog,
		DegradeBacklog: *degrade,
		ShedBacklog:    *shedAt,
	})
	if err != nil {
		return nil, err
	}
	d := &daemon{svc: srv, wlog: wlog, addr: *addr, pprofAddr: *pprofAddr}
	if len(recs) > 0 {
		// Crash recovery: re-walk the logged operation stream through the
		// fresh federation. Determinism makes the rebuilt state — job
		// ids, placements, virtual clock — bit-identical to the state the
		// previous process lost.
		if d.recovered, err = srv.Replay(recs); err != nil {
			return nil, fmt.Errorf("wal replay (%s): %w", *walPath, err)
		}
	}
	return d, nil
}

func run(args []string, stdout io.Writer) error {
	d, err := build(args)
	if err != nil {
		return err
	}
	svc, addr := d.svc, d.addr
	if d.recovered > 0 {
		fmt.Fprintf(stdout, "cloudqcd: recovered %d jobs from %s\n", d.recovered, d.wlog.Path())
	}
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: svc,
		// Handlers release the service lock before writing, so a stalled
		// client only wedges its own connection — and these timeouts
		// reclaim even that.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	if d.pprofAddr != "" {
		// Profiling lives on its own mux and listener: pprof handlers are
		// never registered on the public -addr surface, so exposing the
		// daemon does not expose heap dumps and CPU profiles with it.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(stdout, "cloudqcd: pprof listening on %s\n", d.pprofAddr)
			if err := http.ListenAndServe(d.pprofAddr, pm); err != nil {
				fmt.Fprintln(os.Stderr, "cloudqcd: pprof:", err)
			}
		}()
	}

	shutdown := make(chan error, 1)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(stdout, "cloudqcd: shutting down, draining backlog")
		shutdown <- httpSrv.Shutdown(context.Background())
	}()

	fmt.Fprintf(stdout, "cloudqcd: listening on %s\n", addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-shutdown; err != nil {
		return err
	}
	results, err := svc.Drain()
	if err != nil {
		return err
	}
	printSummary(stdout, results)
	if d.wlog != nil {
		// A clean drain settles every logged job; the history has nothing
		// left to recover, so the next boot cold-starts on an empty log.
		if err := d.wlog.Reset(); err != nil {
			return err
		}
		if err := d.wlog.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "cloudqcd: wal %s truncated after clean drain\n", d.wlog.Path())
	}
	return nil
}

// printSummary renders the drained stream's final aggregates.
func printSummary(w io.Writer, results []*core.JobResult) {
	on := core.OnlineStatsOf(results)
	fmt.Fprintf(w, "cloudqcd: drained %d jobs (%d failed), mean JCT %.1f CX, p99 %.1f CX, mean wait %.1f CX\n",
		len(results), on.Failed, on.MeanJCT, on.P99JCT, on.MeanWait)
	slo := metrics.AggregateSLO(core.Outcomes(results))
	for _, t := range slo.PerTenant {
		fmt.Fprintf(w, "cloudqcd: tenant %d: %d completed, %d failed, attainment %s\n",
			t.Tenant, t.Completed, t.Failed, pct(t.Attainment))
	}
}

// pct renders an attainment fraction, dashing out NaN (no deadlines).
func pct(v float64) string {
	if v != v {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", v*100)
}

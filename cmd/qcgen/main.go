// Command qcgen emits any qlib benchmark circuit as OpenQASM 2.0 on
// stdout, plus a short characteristics summary on stderr.
//
// Usage:
//
//	qcgen -circuit qft_n63 > qft_n63.qasm
//	qcgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudqc/internal/qasm"
	"cloudqc/internal/qlib"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qcgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qcgen", flag.ContinueOnError)
	name := fs.String("circuit", "", "benchmark circuit to emit")
	list := fs.Bool("list", false, "list available circuits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(qlib.Names(), "\n"))
		return nil
	}
	if *name == "" {
		return fmt.Errorf("missing -circuit (or -list)")
	}
	c, err := qlib.Build(*name)
	if err != nil {
		return err
	}
	oneQ, twoQ, ms := c.GateCount()
	fmt.Fprintf(os.Stderr, "%s: %d qubits, %d 1q + %d 2q gates, %d measures, depth %d\n",
		c.Name, c.NumQubits(), oneQ, twoQ, ms, c.Depth())
	fmt.Print(qasm.Write(c))
	return nil
}

package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<22)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "adder_n64") {
		t.Fatalf("list output:\n%s", out)
	}
}

func TestRunEmitsQASM(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-circuit", "ising_n34"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[34];", "cx "} {
		if !strings.Contains(out, want) {
			t.Fatalf("qasm output missing %q", want)
		}
	}
}

func TestRunMissingCircuit(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -circuit should error")
	}
}

func TestRunUnknownCircuit(t *testing.T) {
	if err := run([]string{"-circuit", "nope"}); err == nil {
		t.Fatal("unknown circuit should error")
	}
}

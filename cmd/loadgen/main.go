// Command loadgen drives a live cloudqcd with a sustained submission
// stream and reports client-observed throughput and latency — the
// daemon's proof-of-load harness (internal/loadgen is the engine;
// BenchmarkLoadgen feeds the same numbers into the benchjson CI gate).
//
// Usage:
//
//	loadgen [flags]
//
//	-url      daemon base URL (default http://127.0.0.1:8080)
//	-jobs     submissions to issue (default 100000)
//	-workers  concurrent submitters (default 8)
//	-tenants  tenants to spread submissions over (default 4)
//	-circuit  qlib benchmark name (default: inline 3-qubit GHZ)
//	-slack    deadline slack per depth unit (0 = no deadlines)
//	-timeout  settle-phase timeout (default 2m)
//	-json     print the report as JSON instead of text
//
// Exit status is non-zero if the daemon is unreachable, the settle
// phase times out, or no submission was accepted.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"cloudqc/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		url     = fs.String("url", "http://127.0.0.1:8080", "daemon base URL")
		jobs    = fs.Int("jobs", 100000, "submissions to issue")
		workers = fs.Int("workers", 8, "concurrent submitters")
		tenants = fs.Int("tenants", 4, "tenants to spread submissions over")
		circ    = fs.String("circuit", "", "qlib benchmark name (default: inline 3-qubit GHZ)")
		slack   = fs.Float64("slack", 0, "deadline slack per depth unit (0 = no deadlines)")
		timeout = fs.Duration("timeout", 2*time.Minute, "settle-phase timeout")
		asJSON  = fs.Bool("json", false, "print the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:       *url,
		Jobs:          *jobs,
		Workers:       *workers,
		Tenants:       *tenants,
		Circuit:       *circ,
		DeadlineSlack: *slack,
		SettleTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	if rep.Accepted == 0 {
		return errors.New("no submission was accepted")
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(stdout, "loadgen: %d submitted: %d accepted, %d rejected (429), %d shed (503), %d other\n",
		rep.Submitted, rep.Accepted, rep.Rejected, rep.Shed, rep.Other)
	codes := make([]int, 0, len(rep.StatusCounts))
	for code := range rep.StatusCounts {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(stdout, "loadgen: status %d: %d\n", code, rep.StatusCounts[code])
	}
	fmt.Fprintf(stdout, "loadgen: submit %v (p50 %v, p95 %v, p99 %v), settle %v\n",
		rep.SubmitWall.Round(time.Millisecond), rep.SubmitP50, rep.SubmitP95, rep.SubmitP99, rep.SettleWall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "loadgen: %d settled, %.0f jobs/sec end to end\n", rep.Settled, rep.JobsPerSec)
	return nil
}

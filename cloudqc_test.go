package cloudqc

import (
	"strings"
	"testing"
)

func TestQuickstartPipeline(t *testing.T) {
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	circ, err := BuildCircuit("knn_n67")
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlaceAndSchedule(cl, circ, DefaultModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 || res.RemoteGates <= 0 || res.CommCost <= 0 {
		t.Fatalf("degenerate pipeline result: %+v", res)
	}
	if err := res.Placement.Validate(cl); err != nil {
		t.Fatal(err)
	}
}

func TestHandBuiltCircuit(t *testing.T) {
	c := NewCircuit("bell", 2)
	c.Append(H(0), CX(0, 1), M(0), M(1))
	if c.TwoQubitGateCount() != 1 {
		t.Fatal("hand-built circuit wrong")
	}
	src := WriteQASM(c)
	back, err := ParseQASM("bell", src)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatal("QASM round trip through public API failed")
	}
}

func TestCircuitNamesIncludeTable2(t *testing.T) {
	names := CircuitNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"qft_n160", "qugan_n111", "multiplier_n75", "ghz_n127"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("CircuitNames missing %s: %v", want, names)
		}
	}
}

func TestClusterThroughPublicAPI(t *testing.T) {
	cl := NewRandomCloud(20, 0.3, 20, 5, 2)
	cluster, err := NewCluster(ClusterConfig{Cloud: cl, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g127, err := BuildCircuit("ghz_n127")
	if err != nil {
		t.Fatal(err)
	}
	knn, err := BuildCircuit("knn_n67")
	if err != nil {
		t.Fatal(err)
	}
	results, err := cluster.Run([]*Job{
		{ID: 0, Circuit: g127},
		{ID: 1, Circuit: knn},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Failed || r.JCT <= 0 {
			t.Fatalf("job %d: %+v", r.Job.ID, r)
		}
	}
}

func TestOnlineThroughPublicAPI(t *testing.T) {
	jobs, err := OnlineJobs(MixedWorkload(), "bursty", 6, 1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{Cloud: NewRandomCloud(20, 0.3, 20, 5, 2), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	results, err := cluster.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var jcts, waits []float64
	failed := 0
	makespan := 0.0
	for _, r := range results {
		if r.Failed {
			failed++
			continue
		}
		jcts = append(jcts, r.JCT)
		waits = append(waits, r.WaitTime)
		if r.Finished > makespan {
			makespan = r.Finished
		}
	}
	s := AggregateOnline(jcts, waits, failed, makespan)
	if s.Completed == 0 || s.Throughput <= 0 || s.P99JCT < s.P50JCT {
		t.Fatalf("online stats = %+v", s)
	}
	if st := cluster.LastRunStats(); st.Rounds <= 0 || st.Events <= 0 {
		t.Fatalf("run stats = %+v", st)
	}
}

func TestAllPlacersExposed(t *testing.T) {
	cl := NewRandomCloud(20, 0.3, 20, 5, 3)
	circ, err := BuildCircuit("ising_n66")
	if err != nil {
		t.Fatal(err)
	}
	placers := []Placer{
		NewPlacer(DefaultPlacerConfig()),
		NewBFSPlacer(DefaultPlacerConfig()),
		NewRandomPlacer(1),
		NewAnnealerPlacer(1),
		NewGeneticPlacer(1),
	}
	names := map[string]bool{}
	for _, p := range placers {
		pl, err := p.Place(cl, circ)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if err := pl.Validate(cl); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		names[p.Name()] = true
	}
	for _, want := range []string{"CloudQC", "CloudQC-BFS", "Random", "SA", "GA"} {
		if !names[want] {
			t.Fatalf("missing placer %s", want)
		}
	}
}

func TestPoliciesExposed(t *testing.T) {
	cl := NewRandomCloud(10, 0.3, 20, 5, 4)
	circ, err := BuildCircuit("ising_n34")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacer(DefaultPlacerConfig()).Place(cl, circ)
	if err != nil {
		t.Fatal(err)
	}
	dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, DefaultModel().Latency)
	for _, p := range []Policy{PolicyCloudQC(), PolicyGreedy(), PolicyAverage(), PolicyRandom()} {
		res, err := Schedule(dag, cl, DefaultModel(), p, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.JCT <= 0 {
			t.Fatalf("%s: JCT = %v", p.Name(), res.JCT)
		}
	}
}

func TestIntensityExposed(t *testing.T) {
	a, err := BuildCircuit("ghz_n127")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCircuit("qft_n160")
	if err != nil {
		t.Fatal(err)
	}
	if Intensity(b) <= Intensity(a) {
		t.Fatal("qft_n160 must out-rank ghz_n127 on the intensity metric")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d, want 4", len(ws))
	}
	jobs, err := MixedWorkload().Batch(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("batch = %d", len(jobs))
	}
}

func TestCustomTopologyCloud(t *testing.T) {
	topo := RandomTopology(8, 0.4, 5)
	cl := NewCloud(topo, 20, 5)
	if cl.NumQPUs() != 8 {
		t.Fatalf("NumQPUs = %d", cl.NumQPUs())
	}
}

func TestSimulateThroughPublicAPI(t *testing.T) {
	c := NewCircuit("bell", 2)
	c.Append(H(0), CX(0, 1), M(0), M(1))
	state, outcomes := Simulate(c, 3)
	if state.NumQubits() != 2 {
		t.Fatalf("NumQubits = %d", state.NumQubits())
	}
	if outcomes[0] != outcomes[1] {
		t.Fatalf("bell outcomes disagree: %v", outcomes)
	}
}

func TestScheduleMultipathThroughPublicAPI(t *testing.T) {
	cl := NewRandomCloud(12, 0.15, 20, 5, 6)
	circ, err := BuildCircuit("ising_n34")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewRandomPlacer(2).Place(cl, circ)
	if err != nil {
		t.Fatal(err)
	}
	dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, DefaultModel().Latency)
	res, err := ScheduleMultipath(dag, cl, DefaultModel(), PolicyCloudQC(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 {
		t.Fatalf("JCT = %v", res.JCT)
	}
}

func TestScheduleWithFidelityThroughPublicAPI(t *testing.T) {
	cl := NewRandomCloud(12, 0.3, 20, 5, 6)
	circ, err := BuildCircuit("ising_n34")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacer(DefaultPlacerConfig()).Place(cl, circ)
	if err != nil {
		t.Fatal(err)
	}
	dag := BuildRemoteDAG(circ, cl, pl.QubitToQPU, DefaultModel().Latency)
	fm := DefaultFidelityModel()
	fm.LinkFidelity = 0.85 // force purification at threshold 0.9
	res, err := ScheduleWithFidelity(dag, cl, fm, PolicyCloudQC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Schedule(dag, cl, fm.Model, PolicyCloudQC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT < plain.JCT {
		t.Fatalf("purified JCT %v beat plain %v", res.JCT, plain.JCT)
	}
}

func TestMigratingDAGThroughPublicAPI(t *testing.T) {
	cl := NewRandomCloud(20, 0.3, 20, 5, 1)
	circ, err := BuildCircuit("adder_n64")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacer(DefaultPlacerConfig()).Place(cl, circ)
	if err != nil {
		t.Fatal(err)
	}
	lat := DefaultModel().Latency
	static := BuildRemoteDAG(circ, cl, pl.QubitToQPU, lat)
	plan, stats := BuildMigratingDAG(circ, cl, pl.QubitToQPU, lat)
	if stats.Teleports == 0 || plan.Len() >= static.Len() {
		t.Fatalf("migration plan should shrink the DAG: %d vs %d (%d teleports)",
			plan.Len(), static.Len(), stats.Teleports)
	}
	res, err := Schedule(plan, cl, DefaultModel(), PolicyCloudQC(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 {
		t.Fatalf("JCT = %v", res.JCT)
	}
}

func TestUtilizationRecorderThroughPublicAPI(t *testing.T) {
	rec := NewUtilizationRecorder(0)
	cl := NewRandomCloud(20, 0.3, 20, 5, 9)
	cluster, err := NewCluster(ClusterConfig{Cloud: cl, Seed: 9, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	circ, err := BuildCircuit("ghz_n127")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run([]*Job{{ID: 0, Circuit: circ}}); err != nil {
		t.Fatal(err)
	}
	if rec.PeakUtilization() <= 0 {
		t.Fatal("recorder saw no utilization")
	}
}

func TestSLOThroughPublicAPI(t *testing.T) {
	mix := DefaultTenantMix(MixedWorkload(), 2, "poisson", 1500)
	if len(mix) != 3 {
		t.Fatalf("mix = %+v", mix)
	}
	jobs, err := MultiTenantJobs(mix, 5)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := ParseAdmissionMode("wfq")
	if err != nil || mode != WFQMode {
		t.Fatalf("ParseAdmissionMode = %v, %v", mode, err)
	}
	cluster, err := NewCluster(ClusterConfig{
		Cloud:  NewRandomCloud(20, 0.3, 20, 5, 2),
		Policy: PolicyTenantWeighted(),
		Mode:   mode,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := cluster.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := AggregateSLO(Outcomes(results))
	if len(s.PerTenant) != 3 {
		t.Fatalf("per-tenant rows = %+v", s.PerTenant)
	}
	if !(s.Attainment >= 0 && s.Attainment <= 1) {
		t.Fatalf("attainment = %v", s.Attainment)
	}
	if !(s.Fairness > 0 && s.Fairness <= 1+1e-12) {
		t.Fatalf("fairness = %v", s.Fairness)
	}
	// EDF through the public constants works too.
	edf, err := NewCluster(ClusterConfig{Cloud: NewRandomCloud(20, 0.3, 20, 5, 2), Mode: EDFMode, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	jobs2, err := MultiTenantJobs(mix, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := edf.Run(jobs2); err != nil {
		t.Fatal(err)
	}
}
